//! Gated Recurrent Unit (Cho et al., 2014).
//!
//! TS-TCC's temporal-contrasting module summarizes context with an
//! autoregressive GRU in the original paper; this layer restores that
//! fidelity (and provides a second recurrent cell for downstream users).

use crate::linear::Linear;
use crate::module::Module;
use timedrl_tensor::{NdArray, Prng, Var};

/// A single-layer GRU unrolled over `[B, T, C]` input, returning the full
/// hidden sequence `[B, T, H]`.
///
/// Gate layout: one fused affine map per source produces `[r | z | n]`:
///
/// ```text
/// r = σ(W_r x + U_r h)        reset gate
/// z = σ(W_z x + U_z h)        update gate
/// n = tanh(W_n x + r ⊙ U_n h) candidate state
/// h = (1 − z) ⊙ n + z ⊙ h
/// ```
pub struct Gru {
    wx: Linear,
    wh: Linear,
    hidden: usize,
}

impl Gru {
    /// Creates a GRU mapping `input` features to `hidden` units.
    pub fn new(input: usize, hidden: usize, rng: &mut Prng) -> Self {
        Self {
            wx: Linear::new(input, 3 * hidden, rng),
            wh: Linear::new_no_bias(hidden, 3 * hidden, rng),
            hidden,
        }
    }

    /// Unrolls over time; input `[B, T, C]`, output `[B, T, H]`.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "GRU expects [B, T, C]");
        let (b, t, c) = (shape[0], shape[1], shape[2]);
        let h_dim = self.hidden;
        let mut h = Var::constant(NdArray::zeros(&[b, h_dim]));
        let mut outputs = Vec::with_capacity(t);
        for step in 0..t {
            let xt = x.slice(1, step, 1).reshape(&[b, c]);
            let gx = self.wx.forward(&xt);
            let gh = self.wh.forward(&h);
            let r = gx.slice(1, 0, h_dim).add(&gh.slice(1, 0, h_dim)).sigmoid();
            let z = gx.slice(1, h_dim, h_dim).add(&gh.slice(1, h_dim, h_dim)).sigmoid();
            let n = gx
                .slice(1, 2 * h_dim, h_dim)
                .add(&r.mul(&gh.slice(1, 2 * h_dim, h_dim)))
                .tanh_act();
            let one_minus_z = z.neg().add_scalar(1.0);
            h = one_minus_z.mul(&n).add(&z.mul(&h));
            outputs.push(h.reshape(&[b, 1, h_dim]));
        }
        Var::concat(&outputs, 1)
    }

    /// The final hidden state `[B, H]` (the autoregressive summary TS-TCC
    /// feeds its predictors).
    pub fn summarize(&self, x: &Var) -> Var {
        let out = self.forward(x);
        let t = out.shape()[1];
        let b = out.shape()[0];
        out.slice(1, t - 1, 1).reshape(&[b, self.hidden])
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Module for Gru {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.wx.parameters();
        ps.extend(self.wh.parameters());
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let mut rng = Prng::new(0);
        let gru = Gru::new(4, 6, &mut rng);
        let x = Var::constant(rng.randn(&[3, 5, 4]));
        assert_eq!(gru.forward(&x).shape(), vec![3, 5, 6]);
        assert_eq!(gru.summarize(&x).shape(), vec![3, 6]);
    }

    #[test]
    fn hidden_state_bounded() {
        // h is a convex combination of tanh candidates: |h| <= 1.
        let mut rng = Prng::new(1);
        let gru = Gru::new(2, 4, &mut rng);
        let x = Var::constant(rng.randn(&[2, 20, 2]).scale(50.0));
        let y = gru.forward(&x).to_array();
        assert!(y.max() <= 1.0 && y.min() >= -1.0);
    }

    #[test]
    fn gru_is_causal() {
        let mut rng = Prng::new(2);
        let gru = Gru::new(1, 3, &mut rng);
        let x1 = rng.randn(&[1, 6, 1]);
        let mut x2 = x1.clone();
        x2.data_mut()[5] += 30.0;
        let y1 = gru.forward(&Var::constant(x1)).to_array();
        let y2 = gru.forward(&Var::constant(x2)).to_array();
        for i in 0..5 * 3 {
            assert!((y1.data()[i] - y2.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_flow_through_recurrence() {
        let mut rng = Prng::new(3);
        let gru = Gru::new(2, 3, &mut rng);
        let x = Var::constant(rng.randn(&[2, 8, 2]));
        gru.summarize(&x).powf(2.0).sum().backward();
        for p in gru.parameters() {
            assert!(p.grad().expect("grad").l2_norm() > 0.0);
        }
    }

    #[test]
    fn update_gate_can_preserve_state() {
        // With z ≈ 1 (large positive update-gate pre-activation), the
        // state barely moves: verify the gating arithmetic by forcing the
        // weights.
        let mut rng = Prng::new(4);
        let gru = Gru::new(1, 2, &mut rng);
        // Zero all input/recurrent weights, then bias the z-gate high.
        for p in gru.parameters() {
            p.update_value(|w| *w = w.scale(0.0));
        }
        // wx bias layout: [r | z | n] each of width 2; bias is the second
        // parameter of the wx Linear.
        let bias = &gru.wx.parameters()[1];
        let mut b = bias.to_array();
        b.data_mut()[2] = 10.0; // z gate unit 0
        b.data_mut()[3] = 10.0; // z gate unit 1
        bias.set_value(b);
        let x = Var::constant(rng.randn(&[1, 10, 1]));
        let y = gru.forward(&x).to_array();
        // h starts at 0 and z ≈ 1 keeps it there.
        assert!(y.max_abs_diff(&NdArray::zeros(&[1, 10, 2])) < 1e-3);
    }
}
