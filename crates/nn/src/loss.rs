//! Loss functions beyond the primitives on `Var`.
//!
//! TimeDRL itself needs only MSE (Eq. 6–9) and negative cosine similarity
//! with stop-gradient (Eq. 16–18); the remaining losses here serve the
//! baseline methods: NT-Xent for SimCLR/TS-TCC, triplet for T-Loss, and the
//! hierarchical instance/temporal contrast for TS2Vec.

use timedrl_tensor::{NdArray, Var};

/// SimSiam-style negative-cosine loss with stop-gradient on the target
/// (one direction of Eq. 16/17): `-cos(pred, stop_grad(target))` averaged
/// over rows.
pub fn negative_cosine(pred: &Var, target: &Var) -> Var {
    pred.cosine_similarity_mean(&target.detach()).neg()
}

/// The full symmetric SimSiam objective (Eq. 18): average of both
/// stop-gradient directions, each through its own prediction-head output.
pub fn simsiam_loss(p1: &Var, z2: &Var, p2: &Var, z1: &Var) -> Var {
    negative_cosine(p1, z2).add(&negative_cosine(p2, z1)).scale(0.5)
}

/// NT-Xent (normalized temperature-scaled cross-entropy), the SimCLR loss.
///
/// `za` and `zb` are `[N, D]` embeddings of two views of the same `N`
/// instances; row `i` of `za` is positive with row `i` of `zb`, and all
/// other `2N - 2` rows are negatives.
pub fn nt_xent(za: &Var, zb: &Var, temperature: f32) -> Var {
    let n = za.shape()[0];
    assert!(n >= 2, "NT-Xent needs at least 2 instances for negatives");
    let z = Var::concat(&[za.clone(), zb.clone()], 0); // [2N, D]
    let z_norm = l2_normalize_rows(&z);
    // Similarity matrix [2N, 2N], self-similarity masked out. The Gram
    // product reads the transposed operand in place (no copy, no node).
    let sim = z_norm.matmul_t(&z_norm).scale(1.0 / temperature);
    let mask = NdArray::from_fn(&[2 * n, 2 * n], |flat| {
        let (i, j) = (flat / (2 * n), flat % (2 * n));
        if i == j {
            -1e9
        } else {
            0.0
        }
    });
    let logits = sim.add(&Var::constant(mask));
    // Positive of row i is i+n (mod 2n).
    let targets: Vec<usize> = (0..2 * n).map(|i| (i + n) % (2 * n)).collect();
    logits.cross_entropy(&targets)
}

/// Row-wise L2 normalization of `[N, D]` embeddings.
pub fn l2_normalize_rows(z: &Var) -> Var {
    let norms = z.mul(z).sum_axis(1, true).add_scalar(1e-8).sqrt();
    z.div(&norms)
}

/// Triplet margin loss over `[N, D]` anchor/positive/negative embeddings
/// (T-Loss uses a logistic variant; the margin form exercises the same
/// geometry): `mean(relu(d(a,p) - d(a,n) + margin))`.
pub fn triplet_margin(anchor: &Var, positive: &Var, negative: &Var, margin: f32) -> Var {
    let dp = squared_row_distance(anchor, positive);
    let dn = squared_row_distance(anchor, negative);
    dp.sub(&dn).add_scalar(margin).relu().mean()
}

/// Row-wise squared Euclidean distance of `[N, D]` pairs, shape `[N]`.
fn squared_row_distance(a: &Var, b: &Var) -> Var {
    let d = a.sub(b);
    d.mul(&d).sum_axis(1, false)
}

/// T-Loss's logistic triplet objective:
/// `-log σ(aᵀp) - Σ log σ(-aᵀn)` with several negatives, averaged.
pub fn tloss_logistic(anchor: &Var, positive: &Var, negatives: &[Var]) -> Var {
    let pos_score = anchor.mul(positive).sum_axis(1, false);
    let mut loss = pos_score.sigmoid().add_scalar(1e-8).ln().neg().mean();
    for neg in negatives {
        let neg_score = anchor.mul(neg).sum_axis(1, false);
        let term = neg_score.neg().sigmoid().add_scalar(1e-8).ln().neg().mean();
        loss = loss.add(&term);
    }
    loss
}

/// TS2Vec's instance-wise contrast at one scale: timestamps are fixed and
/// the batch dimension provides positives/negatives. `za`, `zb` are
/// `[B, T, D]` embeddings of two views; per timestep, instance `i` in view
/// a is positive with instance `i` in view b.
pub fn ts2vec_instance_contrast(za: &Var, zb: &Var, temperature: f32) -> Var {
    let (b, t) = (za.shape()[0], za.shape()[1]);
    if b < 2 {
        // No negatives available; contributes nothing (matches TS2Vec).
        return Var::scalar(0.0);
    }
    let mut total = Var::scalar(0.0);
    for step in 0..t {
        let a = za.slice(1, step, 1).reshape(&[b, za.shape()[2]]);
        let v = zb.slice(1, step, 1).reshape(&[b, zb.shape()[2]]);
        total = total.add(&nt_xent(&a, &v, temperature));
    }
    total.scale(1.0 / t as f32)
}

/// TS2Vec's temporal contrast: instances are fixed and timestamps within
/// the same series provide positives/negatives.
pub fn ts2vec_temporal_contrast(za: &Var, zb: &Var, temperature: f32) -> Var {
    let (b, t) = (za.shape()[0], za.shape()[1]);
    if t < 2 {
        return Var::scalar(0.0);
    }
    let mut total = Var::scalar(0.0);
    for inst in 0..b {
        let a = za.slice(0, inst, 1).reshape(&[t, za.shape()[2]]);
        let v = zb.slice(0, inst, 1).reshape(&[t, zb.shape()[2]]);
        total = total.add(&nt_xent(&a, &v, temperature));
    }
    total.scale(1.0 / b as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::Prng;

    #[test]
    fn negative_cosine_bounds() {
        let mut rng = Prng::new(0);
        let a = Var::parameter(rng.randn(&[4, 8]));
        let loss = negative_cosine(&a, &a.clone());
        // Identical views: cosine 1 -> loss -1.
        assert!((loss.item() + 1.0).abs() < 1e-5);
    }

    #[test]
    fn negative_cosine_no_grad_to_target() {
        let mut rng = Prng::new(1);
        let a = Var::parameter(rng.randn(&[4, 8]));
        let b = Var::parameter(rng.randn(&[4, 8]));
        negative_cosine(&a, &b).backward();
        assert!(a.grad().is_some());
        assert!(b.grad().is_none(), "stop-gradient must block the target path");
    }

    #[test]
    fn simsiam_symmetric() {
        let mut rng = Prng::new(2);
        let p1 = Var::parameter(rng.randn(&[4, 8]));
        let z2 = Var::parameter(rng.randn(&[4, 8]));
        let loss_ab = simsiam_loss(&p1, &z2, &z2, &p1).item();
        let loss_ba = simsiam_loss(&z2, &p1, &p1, &z2).item();
        assert!((loss_ab - loss_ba).abs() < 1e-5);
    }

    #[test]
    fn nt_xent_prefers_aligned_views() {
        let mut rng = Prng::new(3);
        let za = rng.randn(&[8, 16]);
        // Aligned: second view nearly equal to first.
        let zb_aligned = za.add(&rng.randn(&[8, 16]).scale(0.01));
        let zb_random = rng.randn(&[8, 16]);
        let aligned = nt_xent(&Var::constant(za.clone()), &Var::constant(zb_aligned), 0.5).item();
        let random = nt_xent(&Var::constant(za), &Var::constant(zb_random), 0.5).item();
        assert!(aligned < random);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut rng = Prng::new(4);
        let z = l2_normalize_rows(&Var::constant(rng.randn(&[5, 7]).scale(10.0)));
        let arr = z.to_array();
        for row in arr.data().chunks(7) {
            let n: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn triplet_zero_when_well_separated() {
        let a = Var::constant(NdArray::from_vec(&[1, 2], vec![0.0, 0.0]).unwrap());
        let p = Var::constant(NdArray::from_vec(&[1, 2], vec![0.1, 0.0]).unwrap());
        let n = Var::constant(NdArray::from_vec(&[1, 2], vec![10.0, 0.0]).unwrap());
        assert_eq!(triplet_margin(&a, &p, &n, 1.0).item(), 0.0);
    }

    #[test]
    fn triplet_positive_when_violated() {
        let a = Var::constant(NdArray::from_vec(&[1, 2], vec![0.0, 0.0]).unwrap());
        let p = Var::constant(NdArray::from_vec(&[1, 2], vec![5.0, 0.0]).unwrap());
        let n = Var::constant(NdArray::from_vec(&[1, 2], vec![0.1, 0.0]).unwrap());
        assert!(triplet_margin(&a, &p, &n, 1.0).item() > 0.0);
    }

    #[test]
    fn tloss_decreases_with_aligned_positive() {
        let mut rng = Prng::new(5);
        let a = Var::constant(rng.randn(&[4, 8]));
        let negs = vec![Var::constant(rng.randn(&[4, 8]))];
        let aligned = tloss_logistic(&a, &a.clone(), &negs).item();
        let misaligned = tloss_logistic(&a, &Var::constant(rng.randn(&[4, 8]).scale(0.0)), &negs).item();
        assert!(aligned < misaligned);
    }

    #[test]
    fn ts2vec_losses_finite_and_positive() {
        let mut rng = Prng::new(6);
        let za = Var::parameter(rng.randn(&[4, 6, 8]));
        let zb = Var::parameter(rng.randn(&[4, 6, 8]));
        let li = ts2vec_instance_contrast(&za, &zb, 0.5);
        let lt = ts2vec_temporal_contrast(&za, &zb, 0.5);
        assert!(li.item().is_finite() && li.item() > 0.0);
        assert!(lt.item().is_finite() && lt.item() > 0.0);
        li.add(&lt).backward();
        assert!(za.grad().is_some());
    }

    #[test]
    fn ts2vec_degenerate_sizes_are_zero() {
        let mut rng = Prng::new(7);
        let single_batch = Var::constant(rng.randn(&[1, 4, 8]));
        assert_eq!(ts2vec_instance_contrast(&single_batch, &single_batch, 0.5).item(), 0.0);
        let single_step = Var::constant(rng.randn(&[4, 1, 8]));
        assert_eq!(ts2vec_temporal_contrast(&single_step, &single_step, 0.5).item(), 0.0);
    }
}
