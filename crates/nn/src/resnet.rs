//! 1-D ResNet encoder (ResNet-18 style with one-dimensional convolutions),
//! the "ResNet" row of the Table VIII encoder ablation.

use crate::conv::Conv1d;
use crate::module::{Ctx, Module};
use crate::norm::LayerNorm;
use timedrl_tensor::{Prng, Var};

/// A basic 1-D residual block: conv-norm-relu-conv-norm plus shortcut.
///
/// Normalization is LayerNorm over the channel axis (applied per timestep),
/// which avoids BatchNorm's train/eval statistics plumbing inside deep
/// encoder stacks while providing the same conditioning role.
pub struct BasicBlock1d {
    conv1: Conv1d,
    conv2: Conv1d,
    norm1: LayerNorm,
    norm2: LayerNorm,
    downsample: Option<Conv1d>,
    stride: usize,
}

impl BasicBlock1d {
    /// Creates a block; `stride > 1` halves the temporal resolution.
    pub fn new(c_in: usize, c_out: usize, stride: usize, rng: &mut Prng) -> Self {
        Self {
            conv1: Conv1d::new(c_in, c_out, 3, stride, 1, 1, rng),
            conv2: Conv1d::new(c_out, c_out, 3, 1, 1, 1, rng),
            norm1: LayerNorm::new(c_out),
            norm2: LayerNorm::new(c_out),
            downsample: if stride != 1 || c_in != c_out {
                Some(Conv1d::new(c_in, c_out, 1, stride, 0, 1, rng))
            } else {
                None
            },
            stride,
        }
    }

    /// Normalizes over channels: `[B, C, T]` -> permute -> LN -> permute.
    fn norm(ln: &LayerNorm, x: &Var) -> Var {
        ln.forward(&x.permute(&[0, 2, 1])).permute(&[0, 2, 1])
    }

    /// Applies the block to `[B, C, T]` input.
    pub fn forward(&self, x: &Var) -> Var {
        let h = Self::norm(&self.norm1, &self.conv1.forward(x)).relu();
        let h = Self::norm(&self.norm2, &self.conv2.forward(&h));
        let shortcut = match &self.downsample {
            Some(d) => d.forward(x),
            None => x.clone(),
        };
        h.add(&shortcut).relu()
    }

    /// Temporal stride of the block.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl Module for BasicBlock1d {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.conv1.parameters();
        ps.extend(self.conv2.parameters());
        ps.extend(self.norm1.parameters());
        ps.extend(self.norm2.parameters());
        if let Some(d) = &self.downsample {
            ps.extend(d.parameters());
        }
        ps
    }
}

/// A compact ResNet-18-shaped 1-D encoder: a stem convolution followed by
/// four stages of two basic blocks each. Widths are configurable so the
/// ablation can run at the reproduction's scaled-down sizes.
pub struct ResNet1d {
    stem: Conv1d,
    stages: Vec<BasicBlock1d>,
    out_channels: usize,
}

impl ResNet1d {
    /// `widths` gives the channel count of each of the four stages.
    pub fn new(c_in: usize, widths: [usize; 4], rng: &mut Prng) -> Self {
        let stem = Conv1d::new(c_in, widths[0], 7, 1, 3, 1, rng);
        let mut stages = Vec::with_capacity(8);
        let mut prev = widths[0];
        for (i, &w) in widths.iter().enumerate() {
            let stride = if i == 0 { 1 } else { 2 };
            stages.push(BasicBlock1d::new(prev, w, stride, rng));
            stages.push(BasicBlock1d::new(w, w, 1, rng));
            prev = w;
        }
        Self { stem, stages, out_channels: widths[3] }
    }

    /// Applies the encoder; `[B, C_in, T] -> [B, widths[3], T']` where the
    /// temporal axis shrinks by the stage strides.
    pub fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        let mut h = self.stem.forward(x).relu();
        for s in &self.stages {
            h = s.forward(&h);
        }
        h
    }

    /// Output channel width.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Module for ResNet1d {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.stem.parameters();
        ps.extend(self.stages.iter().flat_map(|s| s.parameters()));
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_preserves_shape_at_stride_one() {
        let mut rng = Prng::new(0);
        let b = BasicBlock1d::new(4, 4, 1, &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 12]));
        assert_eq!(b.forward(&x).shape(), vec![2, 4, 12]);
    }

    #[test]
    fn strided_block_halves_time() {
        let mut rng = Prng::new(1);
        let b = BasicBlock1d::new(4, 8, 2, &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 12]));
        assert_eq!(b.forward(&x).shape(), vec![2, 8, 6]);
    }

    #[test]
    fn resnet_end_to_end() {
        let mut rng = Prng::new(2);
        let net = ResNet1d::new(3, [4, 4, 8, 8], &mut rng);
        let x = Var::constant(rng.randn(&[2, 3, 16]));
        let y = net.forward(&x, &mut Ctx::eval());
        assert_eq!(y.shape()[0], 2);
        assert_eq!(y.shape()[1], 8);
        assert_eq!(y.shape()[2], 2); // 16 / 2^3 stage strides
        y.powf(2.0).mean().backward();
        for p in net.parameters() {
            assert!(p.grad().is_some());
        }
    }
}
