//! Learning-rate schedules: linear warm-up, cosine decay, and step decay,
//! driving any [`Optimizer`] through its
//! `set_learning_rate` hook.

use crate::optim::Optimizer;

/// A learning-rate schedule: maps a 0-based step index to a rate.
pub trait LrSchedule {
    /// The learning rate to use at `step`.
    fn rate_at(&self, step: usize) -> f32;

    /// Applies the schedule to an optimizer for the given step.
    fn apply(&self, opt: &mut dyn Optimizer, step: usize) {
        opt.set_learning_rate(self.rate_at(step));
    }
}

/// Constant rate (the default behaviour, made explicit).
pub struct ConstantLr(pub f32);

impl LrSchedule for ConstantLr {
    fn rate_at(&self, _step: usize) -> f32 {
        self.0
    }
}

/// Linear warm-up from 0 to `peak` over `warmup_steps`, then cosine decay
/// to `floor` at `total_steps` — the schedule most Transformer training
/// recipes (including PatchTST-style setups) use.
pub struct WarmupCosine {
    /// Peak learning rate reached at the end of warm-up.
    pub peak: f32,
    /// Terminal learning rate.
    pub floor: f32,
    /// Warm-up length in steps.
    pub warmup_steps: usize,
    /// Total schedule length in steps.
    pub total_steps: usize,
}

impl LrSchedule for WarmupCosine {
    fn rate_at(&self, step: usize) -> f32 {
        if self.warmup_steps > 0 && step < self.warmup_steps {
            return self.peak * (step + 1) as f32 / self.warmup_steps as f32;
        }
        if step >= self.total_steps {
            return self.floor;
        }
        let span = (self.total_steps - self.warmup_steps).max(1) as f32;
        let progress = (step - self.warmup_steps) as f32 / span;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.floor + (self.peak - self.floor) * cos
    }
}

/// Multiplies the rate by `gamma` every `every` steps.
pub struct StepDecay {
    /// Initial learning rate.
    pub initial: f32,
    /// Multiplicative factor per milestone.
    pub gamma: f32,
    /// Steps between milestones.
    pub every: usize,
}

impl LrSchedule for StepDecay {
    fn rate_at(&self, step: usize) -> f32 {
        let k = (step / self.every.max(1)) as i32;
        self.initial * self.gamma.powi(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use timedrl_tensor::{NdArray, Var};

    #[test]
    fn warmup_ramps_linearly() {
        let s = WarmupCosine { peak: 1.0, floor: 0.0, warmup_steps: 10, total_steps: 100 };
        assert!((s.rate_at(0) - 0.1).abs() < 1e-6);
        assert!((s.rate_at(4) - 0.5).abs() < 1e-6);
        assert!((s.rate_at(9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_decays_to_floor() {
        let s = WarmupCosine { peak: 1.0, floor: 0.1, warmup_steps: 0, total_steps: 100 };
        assert!((s.rate_at(0) - 1.0).abs() < 1e-4);
        let mid = s.rate_at(50);
        assert!((mid - 0.55).abs() < 0.02, "midpoint {mid}");
        assert!((s.rate_at(100) - 0.1).abs() < 1e-6);
        assert_eq!(s.rate_at(10_000), 0.1);
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = WarmupCosine { peak: 1.0, floor: 0.0, warmup_steps: 5, total_steps: 50 };
        let mut prev = f32::INFINITY;
        for step in 5..50 {
            let r = s.rate_at(step);
            assert!(r <= prev + 1e-6, "not monotone at {step}");
            prev = r;
        }
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay { initial: 0.8, gamma: 0.5, every: 10 };
        assert_eq!(s.rate_at(0), 0.8);
        assert_eq!(s.rate_at(9), 0.8);
        assert_eq!(s.rate_at(10), 0.4);
        assert_eq!(s.rate_at(25), 0.2);
    }

    #[test]
    fn schedule_drives_optimizer() {
        let w = Var::parameter(NdArray::zeros(&[1]));
        let mut opt = Sgd::new(vec![w], 0.0, 0.0);
        let s = ConstantLr(0.07);
        s.apply(&mut opt, 3);
        assert_eq!(opt.learning_rate(), 0.07);
    }
}
