//! Module abstractions: parameter collection and the forward context.

use timedrl_tensor::{Prng, Var};

/// A trainable component that exposes its parameter leaves.
///
/// Forward signatures vary by layer (sequence layers take `[B, T, D]`,
/// heads take `[N, D]`, convolutions take `[B, C, T]`), so `forward` is an
/// inherent method on each layer rather than part of this trait. The trait
/// covers what optimizers and checkpoints need: a flat view of parameters.
pub trait Module {
    /// All trainable parameter leaves, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// Total scalar parameter count.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.value().numel()).sum()
    }
}

/// Per-forward-pass context: the train/eval switch and the RNG that feeds
/// dropout masks.
///
/// TimeDRL's instance-contrastive task depends on dropout randomness being
/// *live* during pre-training — two forward passes through the same encoder
/// with the same `Ctx` must produce different views. Evaluation contexts
/// disable all stochasticity.
pub struct Ctx {
    /// Whether stochastic layers (dropout) are active.
    pub training: bool,
    /// RNG used by stochastic layers.
    pub rng: Prng,
}

impl Ctx {
    /// A training context with dropout enabled, seeded for reproducibility.
    pub fn train(seed: u64) -> Self {
        Self { training: true, rng: Prng::new(seed) }
    }

    /// An evaluation context: dropout becomes the identity.
    pub fn eval() -> Self {
        Self { training: false, rng: Prng::new(0) }
    }
}

/// Gradient-norm clipping over a parameter set; returns the pre-clip global
/// norm. A no-op when the norm is already below `max_norm`.
pub fn clip_grad_norm(params: &[Var], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad_ref() {
            total += g.data().iter().map(|v| v * v).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            // In place — same values the old clone/re-seed produced.
            p.update_grad(|g| {
                for v in g.data_mut() {
                    *v *= scale;
                }
            });
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::NdArray;

    #[test]
    fn ctx_modes() {
        assert!(Ctx::train(0).training);
        assert!(!Ctx::eval().training);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let p = Var::parameter(NdArray::zeros(&[4]));
        p.backward_with(NdArray::from_slice(&[3.0, 0.0, 4.0, 0.0])); // norm 5
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = p.grad().unwrap();
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_under_limit() {
        let p = Var::parameter(NdArray::zeros(&[2]));
        p.backward_with(NdArray::from_slice(&[0.3, 0.4])); // norm 0.5
        clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert_eq!(p.grad().unwrap().data(), &[0.3, 0.4]);
    }
}
