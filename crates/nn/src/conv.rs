//! 1-D convolution as a fused autograd operation.
//!
//! Inputs are `[B, C_in, T]`, kernels `[C_out, C_in, K]`. Supports stride,
//! symmetric zero padding, and dilation — enough for the TCN and 1-D ResNet
//! encoders of the Table VIII ablation and for the convolutional baseline
//! encoders (TS2Vec/SimTS-style).

use crate::module::Module;
use testkit::pool;
use timedrl_tensor::{NdArray, Prng, Var};

/// Work-per-chunk target for the parallel conv kernels, in multiply-adds.
const CONV_GRAIN: usize = 1 << 16;

/// Computes the output length of a 1-D convolution.
pub fn conv1d_out_len(t: usize, k: usize, stride: usize, padding: usize, dilation: usize) -> usize {
    let eff_k = dilation * (k - 1) + 1;
    if t + 2 * padding < eff_k {
        return 0;
    }
    (t + 2 * padding - eff_k) / stride + 1
}

/// Forward kernel: `out[b, co, to] = Σ_ci Σ_k w[co, ci, k] · x[b, ci, to·s + k·d − p]`.
fn conv1d_forward(
    x: &NdArray,
    w: &NdArray,
    stride: usize,
    padding: usize,
    dilation: usize,
) -> NdArray {
    let (b, c_in, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (c_out, c_in_w, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(c_in, c_in_w, "conv1d channel mismatch");
    let t_out = conv1d_out_len(t, k, stride, padding, dilation);
    let mut out = NdArray::zeros(&[b, c_out, t_out]);
    if t_out == 0 {
        return out;
    }
    let xd = x.data();
    let wd = w.data();
    // Fan out over `(bi, co)` output rows: each row depends only on its own
    // batch entry and kernel filter, and the `(ci, kk)` accumulation order
    // inside a row matches the serial loop, so chunking is bit-exact.
    let cost = b * c_out * t_out * c_in * k;
    let rows_per_chunk = if pool::should_parallelize(cost, CONV_GRAIN) {
        (pool::grain(CONV_GRAIN) / (t_out * c_in * k).max(1)).clamp(1, b * c_out)
    } else {
        b * c_out
    };
    pool::for_each_chunk(out.data_mut(), rows_per_chunk * t_out, |offset, chunk| {
        let first_row = offset / t_out;
        for (lr, orow) in chunk.chunks_mut(t_out).enumerate() {
            let row = first_row + lr;
            let (bi, co) = (row / c_out, row % c_out);
            for (to, o) in orow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                let base = to * stride;
                for ci in 0..c_in {
                    let xoff = (bi * c_in + ci) * t;
                    let woff = (co * c_in + ci) * k;
                    for kk in 0..k {
                        let ti = base + kk * dilation;
                        if ti < padding || ti - padding >= t {
                            continue;
                        }
                        acc += wd[woff + kk] * xd[xoff + ti - padding];
                    }
                }
                *o = acc;
            }
        }
    });
    out
}

/// Backward kernels: gradient w.r.t. input and weight.
fn conv1d_backward(
    g: &NdArray,
    x: &NdArray,
    w: &NdArray,
    stride: usize,
    padding: usize,
    dilation: usize,
) -> (NdArray, NdArray) {
    let (b, c_in, t) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (c_out, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let t_out = g.shape()[2];
    let mut gx = NdArray::zeros(&[b, c_in, t]);
    let mut gw = NdArray::zeros(&[c_out, c_in, k]);
    let gd = g.data();
    let xd = x.data();
    let wd = w.data();
    let cost = b * c_out * t_out * c_in * k;
    // gx: fan out over batch entries — each worker owns `gx[bi]` exclusively
    // and replays the serial `(co, to, ci, kk)` accumulation order within it.
    {
        let per = c_in * t;
        let batches_per_chunk = if pool::should_parallelize(cost, CONV_GRAIN) {
            (pool::grain(CONV_GRAIN) / (c_out * t_out * c_in * k).max(1)).clamp(1, b)
        } else {
            b
        };
        pool::for_each_chunk(gx.data_mut(), batches_per_chunk * per.max(1), |offset, chunk| {
            let first = if per > 0 { offset / per } else { 0 };
            for (lb, gx_b) in chunk.chunks_mut(per.max(1)).enumerate() {
                let bi = first + lb;
                for co in 0..c_out {
                    let goff = (bi * c_out + co) * t_out;
                    for to in 0..t_out {
                        let gv = gd[goff + to];
                        if gv == 0.0 {
                            continue;
                        }
                        let base = to * stride;
                        for ci in 0..c_in {
                            let woff = (co * c_in + ci) * k;
                            for kk in 0..k {
                                let ti = base + kk * dilation;
                                if ti < padding || ti - padding >= t {
                                    continue;
                                }
                                gx_b[ci * t + ti - padding] += gv * wd[woff + kk];
                            }
                        }
                    }
                }
            }
        });
    }
    // gw: fan out over output filters — each worker owns `gw[co]` and keeps
    // the serial `(bi, to, ci, kk)` accumulation order for that filter.
    {
        let per = c_in * k;
        let filters_per_chunk = if pool::should_parallelize(cost, CONV_GRAIN) {
            (pool::grain(CONV_GRAIN) / (b * t_out * c_in * k).max(1)).clamp(1, c_out)
        } else {
            c_out
        };
        pool::for_each_chunk(gw.data_mut(), filters_per_chunk * per.max(1), |offset, chunk| {
            let first = if per > 0 { offset / per } else { 0 };
            for (lc, gw_c) in chunk.chunks_mut(per.max(1)).enumerate() {
                let co = first + lc;
                for bi in 0..b {
                    let goff = (bi * c_out + co) * t_out;
                    for to in 0..t_out {
                        let gv = gd[goff + to];
                        if gv == 0.0 {
                            continue;
                        }
                        let base = to * stride;
                        for ci in 0..c_in {
                            let xoff = (bi * c_in + ci) * t;
                            for kk in 0..k {
                                let ti = base + kk * dilation;
                                if ti < padding || ti - padding >= t {
                                    continue;
                                }
                                gw_c[ci * k + kk] += gv * xd[xoff + ti - padding];
                            }
                        }
                    }
                }
            }
        });
    }
    (gx, gw)
}

/// A 1-D convolution layer over `[B, C_in, T]` input.
pub struct Conv1d {
    weight: Var,
    bias: Option<Var>,
    stride: usize,
    padding: usize,
    dilation: usize,
}

impl Conv1d {
    /// Creates a convolution with Kaiming-normal weights and zero bias.
    pub fn new(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        dilation: usize,
        rng: &mut Prng,
    ) -> Self {
        Self {
            weight: Var::parameter(rng.kaiming_normal(&[c_out, c_in, kernel])),
            bias: Some(Var::parameter(NdArray::zeros(&[c_out]))),
            stride,
            padding,
            dilation,
        }
    }

    /// "Same-length" convolution (stride 1, symmetric padding `k/2`), for
    /// odd kernels.
    pub fn same(c_in: usize, c_out: usize, kernel: usize, rng: &mut Prng) -> Self {
        assert!(kernel % 2 == 1, "same-padding requires an odd kernel");
        Self::new(c_in, c_out, kernel, 1, kernel / 2, 1, rng)
    }

    /// Applies the convolution.
    pub fn forward(&self, x: &Var) -> Var {
        let xv = x.to_array();
        let wv = self.weight.to_array();
        let (stride, padding, dilation) = (self.stride, self.padding, self.dilation);
        let out = conv1d_forward(&xv, &wv, stride, padding, dilation);
        let y = Var::custom(
            out,
            vec![x.clone(), self.weight.clone()],
            move |g| {
                let (gx, gw) = conv1d_backward(g, &xv, &wv, stride, padding, dilation);
                vec![gx, gw]
            },
        );
        match &self.bias {
            // Bias broadcasts over [B, C_out, T]: reshape to [C_out, 1].
            Some(b) => {
                let c_out = b.shape()[0];
                y.add(&b.reshape(&[c_out, 1]))
            }
            None => y,
        }
    }
}

impl Module for Conv1d {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::gradcheck::assert_gradients_close;

    #[test]
    fn out_len_formula() {
        assert_eq!(conv1d_out_len(10, 3, 1, 1, 1), 10); // same
        assert_eq!(conv1d_out_len(10, 3, 2, 1, 1), 5);
        assert_eq!(conv1d_out_len(10, 3, 1, 0, 2), 6); // dilated
        assert_eq!(conv1d_out_len(2, 5, 1, 0, 1), 0); // too short
    }

    #[test]
    fn identity_kernel_preserves_signal() {
        // Kernel [[ [0,1,0] ]] with same padding is the identity.
        let x = NdArray::from_fn(&[1, 1, 6], |i| i as f32);
        let w = NdArray::from_vec(&[1, 1, 3], vec![0.0, 1.0, 0.0]).unwrap();
        let y = conv1d_forward(&x, &w, 1, 1, 1);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn moving_average_kernel() {
        let x = NdArray::from_vec(&[1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = NdArray::from_vec(&[1, 1, 2], vec![0.5, 0.5]).unwrap();
        let y = conv1d_forward(&x, &w, 1, 0, 1);
        assert_eq!(y.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn multichannel_shapes() {
        let mut rng = Prng::new(0);
        let conv = Conv1d::new(3, 5, 3, 2, 1, 1, &mut rng);
        let x = Var::constant(rng.randn(&[2, 3, 11]));
        let y = conv.forward(&x);
        assert_eq!(y.shape(), vec![2, 5, conv1d_out_len(11, 3, 2, 1, 1)]);
    }

    #[test]
    fn conv_gradcheck_input() {
        let mut rng = Prng::new(1);
        let x = rng.randn(&[2, 2, 7]);
        let conv = Conv1d::new(2, 3, 3, 1, 1, 1, &mut rng);
        assert_gradients_close(&x, 1e-2, 2e-2, |v| conv.forward(v).powf(2.0).sum());
    }

    #[test]
    fn conv_gradcheck_dilated_strided() {
        let mut rng = Prng::new(2);
        let x = rng.randn(&[1, 2, 12]);
        let conv = Conv1d::new(2, 2, 3, 2, 2, 2, &mut rng);
        assert_gradients_close(&x, 1e-2, 2e-2, |v| conv.forward(v).powf(2.0).sum());
    }

    #[test]
    fn conv_weight_receives_gradient() {
        let mut rng = Prng::new(3);
        let conv = Conv1d::new(2, 2, 3, 1, 1, 1, &mut rng);
        let x = Var::constant(rng.randn(&[1, 2, 8]));
        conv.forward(&x).powf(2.0).sum().backward();
        for p in conv.parameters() {
            assert!(p.grad().expect("grad").l2_norm() > 0.0);
        }
    }

    #[test]
    fn parallel_conv_is_bit_exact() {
        let mut rng = Prng::new(7);
        let x = rng.randn(&[4, 3, 16]);
        let w = rng.randn(&[5, 3, 3]);
        let g = rng.randn(&[4, 5, conv1d_out_len(16, 3, 1, 1, 1)]);
        let run = || {
            let y = conv1d_forward(&x, &w, 1, 1, 1);
            let (gx, gw) = conv1d_backward(&g, &x, &w, 1, 1, 1);
            (y, gx, gw)
        };
        let serial = pool::with_threads(1, run);
        for threads in [2usize, 4] {
            let par = pool::with_threads(threads, || pool::with_grain(8, run));
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn bias_shifts_every_position() {
        let mut rng = Prng::new(4);
        let conv = Conv1d::new(1, 1, 1, 1, 0, 1, &mut rng);
        // Force weight = 1, bias = 2.5 -> y = x + 2.5.
        conv.weight.set_value(NdArray::ones(&[1, 1, 1]));
        conv.bias.as_ref().unwrap().set_value(NdArray::from_slice(&[2.5]));
        let x = Var::constant(NdArray::from_vec(&[1, 1, 3], vec![0.0, 1.0, -1.0]).unwrap());
        let y = conv.forward(&x).to_array();
        assert_eq!(y.data(), &[2.5, 3.5, 1.5]);
    }
}
