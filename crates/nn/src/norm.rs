//! Normalization layers: LayerNorm and BatchNorm1d.

use std::cell::RefCell;

use crate::module::Module;
use timedrl_tensor::{NdArray, Var};

/// Layer normalization over the last axis, with learnable affine
/// parameters, as used inside every Transformer block.
pub struct LayerNorm {
    gamma: Var,
    beta: Var,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Creates a LayerNorm over a trailing axis of width `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Var::parameter(NdArray::ones(&[dim])),
            beta: Var::parameter(NdArray::zeros(&[dim])),
            eps: 1e-5,
            dim,
        }
    }

    /// Normalizes `[..., dim]`-shaped input over its last axis.
    pub fn forward(&self, x: &Var) -> Var {
        let last = x.shape().len() - 1;
        debug_assert_eq!(x.shape()[last], self.dim, "LayerNorm width mismatch");
        let mean = x.mean_axis(last, true);
        let centered = x.sub(&mean);
        let var = centered.mul(&centered).mean_axis(last, true);
        let inv_std = var.add_scalar(self.eps).sqrt();
        centered.div(&inv_std).mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Batch normalization over the batch axis of `[N, D]` input, with running
/// statistics for evaluation mode.
///
/// TimeDRL's instance-contrastive head `c_θ` is "a two-layer bottleneck MLP
/// with BatchNorm and ReLU in the middle" (Section IV-C); this layer exists
/// primarily to serve that head and the SimSiam/BYOL baselines.
pub struct BatchNorm1d {
    gamma: Var,
    beta: Var,
    running_mean: RefCell<NdArray>,
    running_var: RefCell<NdArray>,
    momentum: f32,
    eps: f32,
    dim: usize,
}

impl BatchNorm1d {
    /// Creates a BatchNorm over feature width `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Var::parameter(NdArray::ones(&[dim])),
            beta: Var::parameter(NdArray::zeros(&[dim])),
            running_mean: RefCell::new(NdArray::zeros(&[dim])),
            running_var: RefCell::new(NdArray::ones(&[dim])),
            momentum: 0.1,
            eps: 1e-5,
            dim,
        }
    }

    /// Normalizes `[N, dim]` input. In training mode batch statistics are
    /// used (and folded into the running estimates); in eval mode the
    /// running estimates are used.
    pub fn forward(&self, x: &Var, training: bool) -> Var {
        debug_assert_eq!(x.shape()[1], self.dim, "BatchNorm width mismatch");
        if training {
            let mean = x.mean_axis(0, true);
            let centered = x.sub(&mean);
            let var = centered.mul(&centered).mean_axis(0, true);
            {
                let m = self.momentum;
                let mut rm = self.running_mean.borrow_mut();
                *rm = rm.scale(1.0 - m).add(&mean.to_array().squeeze(0).scale(m));
                let mut rv = self.running_var.borrow_mut();
                *rv = rv.scale(1.0 - m).add(&var.to_array().squeeze(0).scale(m));
            }
            let inv_std = var.add_scalar(self.eps).sqrt();
            centered.div(&inv_std).mul(&self.gamma).add(&self.beta)
        } else {
            let mean = Var::constant(self.running_mean.borrow().clone());
            let std = Var::constant(self.running_var.borrow().add_scalar(self.eps).sqrt());
            x.sub(&mean).div(&std).mul(&self.gamma).add(&self.beta)
        }
    }
}

impl Module for BatchNorm1d {
    fn parameters(&self) -> Vec<Var> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::gradcheck::assert_gradients_close;
    use timedrl_tensor::Prng;

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = Prng::new(0);
        let ln = LayerNorm::new(16);
        let x = Var::constant(rng.randn(&[4, 16]).scale(3.0).add_scalar(5.0));
        let y = ln.forward(&x).to_array();
        for row in y.data().chunks(16) {
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4, "row mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row var {var}");
        }
    }

    #[test]
    fn layernorm_3d_input() {
        let mut rng = Prng::new(1);
        let ln = LayerNorm::new(8);
        let x = Var::constant(rng.randn(&[2, 5, 8]));
        assert_eq!(ln.forward(&x).shape(), vec![2, 5, 8]);
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut rng = Prng::new(2);
        let x = rng.randn(&[3, 6]);
        let ln = LayerNorm::new(6);
        assert_gradients_close(&x, 1e-2, 2e-2, |v| ln.forward(v).powf(2.0).sum());
    }

    #[test]
    fn batchnorm_train_normalizes_columns() {
        let mut rng = Prng::new(3);
        let bn = BatchNorm1d::new(4);
        let x = Var::constant(rng.randn(&[64, 4]).scale(2.0).add_scalar(-3.0));
        let y = bn.forward(&x, true).to_array();
        let mean = y.mean_axis(0, false);
        let var = y.var_axis(0, false);
        for i in 0..4 {
            assert!(mean.data()[i].abs() < 1e-4);
            assert!((var.data()[i] - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut rng = Prng::new(4);
        let bn = BatchNorm1d::new(2);
        // Feed shifted data several times to move the running stats.
        for _ in 0..50 {
            let x = Var::constant(rng.randn(&[32, 2]).add_scalar(10.0));
            bn.forward(&x, true);
        }
        // In eval mode, data at the running mean maps near zero.
        let x = Var::constant(NdArray::full(&[1, 2], 10.0));
        let y = bn.forward(&x, false).to_array();
        assert!(y.data().iter().all(|v| v.abs() < 0.5), "eval output {:?}", y.data());
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut rng = Prng::new(5);
        let x = rng.randn(&[8, 3]);
        let bn = BatchNorm1d::new(3);
        assert_gradients_close(&x, 1e-2, 2e-2, |v| bn.forward(v, true).powf(2.0).sum());
    }
}
