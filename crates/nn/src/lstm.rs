//! LSTM and bidirectional LSTM sequence encoders (Table VIII ablation rows).

use crate::linear::Linear;
use crate::module::Module;
use timedrl_tensor::{NdArray, Prng, Var};

/// A single-layer LSTM unrolled over `[B, T, C]` input, returning the full
/// hidden sequence `[B, T, H]`.
///
/// Gate layout follows the classic formulation: one fused affine map
/// produces `[i | f | g | o]`, then
/// `c = σ(f)·c + σ(i)·tanh(g)` and `h = σ(o)·tanh(c)`.
pub struct Lstm {
    wx: Linear,
    wh: Linear,
    hidden: usize,
}

impl Lstm {
    /// Creates an LSTM mapping `input` features to `hidden` units.
    pub fn new(input: usize, hidden: usize, rng: &mut Prng) -> Self {
        Self {
            wx: Linear::new(input, 4 * hidden, rng),
            wh: Linear::new_no_bias(hidden, 4 * hidden, rng),
            hidden,
        }
    }

    /// Unrolls over time; input `[B, T, C]`, output `[B, T, H]`.
    pub fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "LSTM expects [B, T, C]");
        let (b, t) = (shape[0], shape[1]);
        let h_dim = self.hidden;
        let mut h = Var::constant(NdArray::zeros(&[b, h_dim]));
        let mut c = Var::constant(NdArray::zeros(&[b, h_dim]));
        let mut outputs = Vec::with_capacity(t);
        for step in 0..t {
            let xt = x.slice(1, step, 1).reshape(&[b, shape[2]]);
            let gates = self.wx.forward(&xt).add(&self.wh.forward(&h));
            let i = gates.slice(1, 0, h_dim).sigmoid();
            let f = gates.slice(1, h_dim, h_dim).sigmoid();
            let g = gates.slice(1, 2 * h_dim, h_dim).tanh_act();
            let o = gates.slice(1, 3 * h_dim, h_dim).sigmoid();
            c = f.mul(&c).add(&i.mul(&g));
            h = o.mul(&c.tanh_act());
            outputs.push(h.reshape(&[b, 1, h_dim]));
        }
        Var::concat(&outputs, 1)
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }
}

impl Module for Lstm {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.wx.parameters();
        ps.extend(self.wh.parameters());
        ps
    }
}

/// A bidirectional LSTM: a forward and a time-reversed pass, concatenated
/// along the feature axis to `[B, T, 2H]`.
pub struct BiLstm {
    forward_cell: Lstm,
    backward_cell: Lstm,
}

impl BiLstm {
    /// Creates a BiLSTM; output width is `2 * hidden`.
    pub fn new(input: usize, hidden: usize, rng: &mut Prng) -> Self {
        Self {
            forward_cell: Lstm::new(input, hidden, rng),
            backward_cell: Lstm::new(input, hidden, rng),
        }
    }

    /// Runs both directions; input `[B, T, C]`, output `[B, T, 2H]`.
    pub fn forward(&self, x: &Var) -> Var {
        let fwd = self.forward_cell.forward(x);
        let rev_in = reverse_time(x);
        let bwd = reverse_time(&self.backward_cell.forward(&rev_in));
        Var::concat(&[fwd, bwd], 2)
    }
}

impl Module for BiLstm {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.forward_cell.parameters();
        ps.extend(self.backward_cell.parameters());
        ps
    }
}

/// Reverses a `[B, T, C]` sequence along the time axis (differentiable).
pub fn reverse_time(x: &Var) -> Var {
    let t = x.shape()[1];
    let slices: Vec<Var> = (0..t).rev().map(|i| x.slice(1, i, 1)).collect();
    Var::concat(&slices, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lstm_output_shape() {
        let mut rng = Prng::new(0);
        let lstm = Lstm::new(5, 7, &mut rng);
        let x = Var::constant(rng.randn(&[3, 6, 5]));
        assert_eq!(lstm.forward(&x).shape(), vec![3, 6, 7]);
    }

    #[test]
    fn lstm_hidden_state_bounded() {
        // h = o * tanh(c) keeps |h| < 1.
        let mut rng = Prng::new(1);
        let lstm = Lstm::new(2, 4, &mut rng);
        let x = Var::constant(rng.randn(&[2, 10, 2]).scale(100.0));
        let y = lstm.forward(&x).to_array();
        assert!(y.max() <= 1.0 && y.min() >= -1.0);
    }

    #[test]
    fn lstm_is_causal() {
        let mut rng = Prng::new(2);
        let lstm = Lstm::new(1, 3, &mut rng);
        let x1 = rng.randn(&[1, 5, 1]);
        let mut x2 = x1.clone();
        x2.data_mut()[4] += 50.0;
        let y1 = lstm.forward(&Var::constant(x1)).to_array();
        let y2 = lstm.forward(&Var::constant(x2)).to_array();
        // First four timesteps unaffected by a change at t=4.
        for i in 0..4 * 3 {
            assert!((y1.data()[i] - y2.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn bilstm_sees_both_directions() {
        let mut rng = Prng::new(3);
        let bi = BiLstm::new(1, 3, &mut rng);
        let x1 = rng.randn(&[1, 5, 1]);
        let mut x2 = x1.clone();
        x2.data_mut()[4] += 50.0;
        let y1 = bi.forward(&Var::constant(x1)).to_array();
        let y2 = bi.forward(&Var::constant(x2)).to_array();
        // Output width doubles and t=0 *is* affected via the backward pass.
        assert_eq!(y1.shape(), &[1, 5, 6]);
        let diff0: f32 = (0..6).map(|i| (y1.data()[i] - y2.data()[i]).abs()).sum();
        assert!(diff0 > 1e-5);
    }

    #[test]
    fn reverse_time_involution() {
        let mut rng = Prng::new(4);
        let x = Var::constant(rng.randn(&[2, 4, 3]));
        let twice = reverse_time(&reverse_time(&x));
        assert_eq!(twice.to_array(), x.to_array());
    }

    #[test]
    fn lstm_gradients_flow_through_time() {
        let mut rng = Prng::new(5);
        let lstm = Lstm::new(2, 3, &mut rng);
        let x = Var::constant(rng.randn(&[2, 6, 2]));
        // Loss depends only on the *last* step, but gradients must reach
        // weights via the recurrence.
        let y = lstm.forward(&x);
        y.slice(1, 5, 1).powf(2.0).sum().backward();
        for p in lstm.parameters() {
            assert!(p.grad().expect("grad").l2_norm() > 0.0);
        }
    }
}
