//! Transformer encoder/decoder blocks and the stacked sequence encoder.

use crate::attention::MultiHeadAttention;
use crate::linear::Linear;
use crate::module::{Ctx, Module};
use crate::norm::LayerNorm;
use timedrl_tensor::{Prng, Var};

/// One post-norm Transformer block (BERT-style), the unit TimeDRL stacks
/// `L` times:
///
/// ```text
/// x = LN1(x + Dropout(SelfAttention(x)))
/// x = LN2(x + Dropout(FFN(x)))          FFN = Linear -> GELU -> Linear
/// ```
///
/// [`with_pre_norm`](Self::with_pre_norm) switches to the pre-norm (GPT-2
/// style) arrangement, which normalizes *before* each sublayer and leaves
/// the residual stream un-normalized:
///
/// ```text
/// x = x + Dropout(SelfAttention(LN1(x)))
/// x = x + Dropout(FFN(LN2(x)))
/// ```
pub struct TransformerBlock {
    attn: MultiHeadAttention,
    ln1: LayerNorm,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    dropout: f32,
    pre_norm: bool,
}

impl TransformerBlock {
    /// Creates one block. `causal` selects the decoder (masked) variant.
    pub fn new(d_model: usize, n_heads: usize, d_ff: usize, dropout: f32, causal: bool, rng: &mut Prng) -> Self {
        Self {
            attn: MultiHeadAttention::new(d_model, n_heads, causal, dropout, rng),
            ln1: LayerNorm::new(d_model),
            ln2: LayerNorm::new(d_model),
            ff1: Linear::new(d_model, d_ff, rng),
            ff2: Linear::new(d_ff, d_model, rng),
            dropout,
            pre_norm: false,
        }
    }

    /// Switches this block to the pre-norm sublayer arrangement.
    pub fn with_pre_norm(mut self) -> Self {
        self.pre_norm = true;
        self
    }

    /// Applies the block to `[B, T, D]` input.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        if self.pre_norm {
            let attn_out = self
                .attn
                .forward(&self.ln1.forward(x), ctx)
                .dropout(self.dropout, ctx.training, &mut ctx.rng);
            let x = x.add(&attn_out);
            let ff = self
                .ff2
                .forward(&self.ff1.forward(&self.ln2.forward(&x)).gelu())
                .dropout(self.dropout, ctx.training, &mut ctx.rng);
            x.add(&ff)
        } else {
            let attn_out = self
                .attn
                .forward(x, ctx)
                .dropout(self.dropout, ctx.training, &mut ctx.rng);
            let x = self.ln1.forward(&x.add(&attn_out));
            let ff = self
                .ff2
                .forward(&self.ff1.forward(&x).gelu())
                .dropout(self.dropout, ctx.training, &mut ctx.rng);
            self.ln2.forward(&x.add(&ff))
        }
    }
}

impl Module for TransformerBlock {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.attn.parameters();
        ps.extend(self.ln1.parameters());
        ps.extend(self.ln2.parameters());
        ps.extend(self.ff1.parameters());
        ps.extend(self.ff2.parameters());
        ps
    }
}

/// Configuration for [`TransformerEncoder`].
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Latent width `D` of the model.
    pub d_model: usize,
    /// Number of attention heads.
    pub n_heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Number of stacked blocks `L`.
    pub n_layers: usize,
    /// Dropout probability used in attention, residual paths, and the
    /// token-embedding output — the randomness source for TimeDRL's
    /// two-view trick.
    pub dropout: f32,
    /// Use masked (causal) self-attention: the "Transformer Decoder" row of
    /// Table VIII.
    pub causal: bool,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        Self { d_model: 64, n_heads: 4, d_ff: 128, n_layers: 2, dropout: 0.1, causal: false }
    }
}

/// A stack of Transformer blocks operating on already-embedded `[B, T, D]`
/// sequences. Token/positional embedding lives with the model that owns
/// this encoder (TimeDRL adds a `[CLS]` slot before embedding).
pub struct TransformerEncoder {
    blocks: Vec<TransformerBlock>,
    config: TransformerConfig,
}

impl TransformerEncoder {
    /// Builds the stack described by `config`.
    pub fn new(config: &TransformerConfig, rng: &mut Prng) -> Self {
        let blocks = (0..config.n_layers)
            .map(|_| {
                TransformerBlock::new(
                    config.d_model,
                    config.n_heads,
                    config.d_ff,
                    config.dropout,
                    config.causal,
                    rng,
                )
            })
            .collect();
        Self { blocks, config: config.clone() }
    }

    /// Applies all blocks in order.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut h = x.clone();
        for block in &self.blocks {
            h = block.forward(&h, ctx);
        }
        h
    }

    /// The configuration this encoder was built from.
    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }
}

impl Module for TransformerEncoder {
    fn parameters(&self) -> Vec<Var> {
        self.blocks.iter().flat_map(|b| b.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TransformerConfig {
        TransformerConfig { d_model: 16, n_heads: 2, d_ff: 32, n_layers: 2, dropout: 0.1, causal: false }
    }

    #[test]
    fn encoder_preserves_shape() {
        let mut rng = Prng::new(0);
        let enc = TransformerEncoder::new(&small_config(), &mut rng);
        let x = Var::constant(rng.randn(&[3, 5, 16]));
        assert_eq!(enc.forward(&x, &mut Ctx::eval()).shape(), vec![3, 5, 16]);
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let mut rng = Prng::new(1);
        let enc = TransformerEncoder::new(&small_config(), &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 16]));
        let a = enc.forward(&x, &mut Ctx::eval()).to_array();
        let b = enc.forward(&x, &mut Ctx::eval()).to_array();
        assert_eq!(a, b);
    }

    #[test]
    fn train_forward_two_passes_differ() {
        // The core mechanism behind TimeDRL's instance-contrastive views:
        // the same input through the same encoder twice in training mode
        // yields different embeddings because of dropout.
        let mut rng = Prng::new(2);
        let enc = TransformerEncoder::new(&small_config(), &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 16]));
        let mut ctx = Ctx::train(77);
        let a = enc.forward(&x, &mut ctx).to_array();
        let b = enc.forward(&x, &mut ctx).to_array();
        assert!(a.max_abs_diff(&b) > 1e-4);
    }

    #[test]
    fn all_parameters_receive_gradients() {
        let mut rng = Prng::new(3);
        let enc = TransformerEncoder::new(&small_config(), &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 16]));
        enc.forward(&x, &mut Ctx::train(5)).powf(2.0).mean().backward();
        for p in enc.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn parameter_count_matches_formula() {
        let mut rng = Prng::new(4);
        let cfg = small_config();
        let enc = TransformerEncoder::new(&cfg, &mut rng);
        let d = cfg.d_model;
        let per_block = 4 * (d * d + d)         // q,k,v,o projections
            + 2 * 2 * d                          // two layer norms
            + (d * cfg.d_ff + cfg.d_ff)          // ff1
            + (cfg.d_ff * d + d); // ff2
        assert_eq!(enc.num_parameters(), per_block * cfg.n_layers);
    }
}
