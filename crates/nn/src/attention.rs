//! Multi-head scaled-dot-product self-attention.

use crate::linear::Linear;
use crate::module::{Ctx, Module};
use std::cell::RefCell;
use timedrl_tensor::{composed_attention_forced, NdArray, Prng, Var};

/// Multi-head self-attention over `[B, T, D]` sequences.
///
/// With `causal = false` this is the bidirectional attention of the
/// Transformer *encoder* TimeDRL uses as its backbone; with `causal = true`
/// each position attends only to itself and earlier positions, giving the
/// Transformer *decoder* variant of the Table VIII encoder ablation.
///
/// The hot path runs through the fused tiled attention node
/// ([`Var::attention`], DESIGN.md §17): no `[B·H, T, T]` score tensor is
/// materialized forward or backward, bit-identical to the composed graph.
/// The composed graph is kept for `forward_with_weights` (which needs the
/// probability tensor by definition) and for the
/// `with_composed_attention` proof hook.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    head_dim: usize,
    causal: bool,
    attn_dropout: f32,
    /// Cached additive causal mask for the composed path, rebuilt only
    /// when the sequence length changes (`RefCell`: models are per-thread
    /// — data-parallel replicas are constructed inside their worker).
    mask_cache: RefCell<Option<NdArray>>,
}

impl MultiHeadAttention {
    /// Creates an attention layer; `d_model` must be divisible by `n_heads`.
    pub fn new(d_model: usize, n_heads: usize, causal: bool, dropout: f32, rng: &mut Prng) -> Self {
        assert!(n_heads > 0 && d_model % n_heads == 0, "d_model must divide by n_heads");
        Self {
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            n_heads,
            head_dim: d_model / n_heads,
            causal,
            attn_dropout: dropout,
            mask_cache: RefCell::new(None),
        }
    }

    /// Splits `[B, T, D]` into `[B*H, T, Dh]` per-head batches.
    fn split_heads(&self, x: &Var, b: usize, t: usize) -> Var {
        x.reshape(&[b, t, self.n_heads, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * self.n_heads, t, self.head_dim])
    }

    /// The additive causal mask for sequence length `t`, cached across
    /// `attend` calls instead of rebuilt per call (the serving plan
    /// precomputes its mask the same way).
    fn cached_mask(&self, t: usize) -> NdArray {
        let mut cache = self.mask_cache.borrow_mut();
        if cache.as_ref().is_none_or(|m| m.shape()[0] != t) {
            *cache = Some(causal_mask(t));
        }
        cache.as_ref().expect("mask just built").clone()
    }

    /// Applies self-attention; input and output are `[B, T, D]`.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        self.attend(x, ctx, false).0
    }

    /// Applies self-attention and also returns the post-softmax attention
    /// probabilities `[B, H, T, T]` (pre-dropout) for interpretability —
    /// e.g. inspecting what the `[CLS]` token attends to.
    pub fn forward_with_weights(&self, x: &Var, ctx: &mut Ctx) -> (Var, Var) {
        let (out, weights) = self.attend(x, ctx, true);
        (out, weights.expect("weights requested"))
    }

    /// Shared attention core. When the probability tensor is not requested
    /// the fused node runs — the `[B·H, T, T]` scores never exist — with
    /// the dropout mask (training only) drawn here in exactly the order
    /// [`Var::dropout`] would draw it, so the RNG stream and therefore all
    /// training bits are unchanged from the composed path.
    fn attend(&self, x: &Var, ctx: &mut Ctx, want_weights: bool) -> (Var, Option<Var>) {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention expects [B, T, D]");
        let (b, t, d) = (shape[0], shape[1], shape[2]);

        let q = self.split_heads(&self.wq.forward(x), b, t);
        let k = self.split_heads(&self.wk.forward(x), b, t);
        let v = self.split_heads(&self.wv.forward(x), b, t);
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        if !want_weights && !composed_attention_forced() {
            let drop_mask = (self.attn_dropout > 0.0 && ctx.training).then(|| {
                let keep = 1.0 - self.attn_dropout;
                NdArray::from_fn(&[b * self.n_heads, t, t], |_| {
                    if ctx.rng.bernoulli(keep) {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
            });
            let out = Var::attention(&q, &k, &v, scale, self.causal, drop_mask)
                .reshape(&[b, self.n_heads, t, self.head_dim])
                .permute(&[0, 2, 1, 3])
                .reshape(&[b, t, d]);
            return (self.wo.forward(&out), None);
        }

        // Composed path: materializes [B*H, T, T] probabilities — needed
        // when the caller wants them, or under the proof hook.
        let mut scores = q.matmul_t(&k).scale(scale);
        if self.causal {
            scores = scores.add(&Var::constant(self.cached_mask(t)));
        }
        let probs = scores.softmax_lastdim();
        let weights = want_weights.then(|| probs.reshape(&[b, self.n_heads, t, t]));
        let mut attn = probs;
        if self.attn_dropout > 0.0 {
            attn = attn.dropout(self.attn_dropout, ctx.training, &mut ctx.rng);
        }
        let out = attn
            .matmul(&v)
            .reshape(&[b, self.n_heads, t, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, t, d]);
        (self.wo.forward(&out), weights)
    }

    /// Whether this layer applies a causal mask.
    pub fn is_causal(&self) -> bool {
        self.causal
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Var> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

/// Additive causal mask: 0 on and below the diagonal, a large negative
/// number above it (softmax maps those positions to ~0 probability).
fn causal_mask(t: usize) -> NdArray {
    NdArray::from_fn(&[t, t], |flat| {
        let (i, j) = (flat / t, flat % t);
        if j > i {
            -1e9
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_preserved() {
        let mut rng = Prng::new(0);
        let attn = MultiHeadAttention::new(16, 4, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 7, 16]));
        assert_eq!(attn.forward(&x, &mut Ctx::eval()).shape(), vec![2, 7, 16]);
    }

    #[test]
    fn attention_rows_are_probabilities() {
        // Reconstruct the internal softmax on a known path: uniform input
        // must produce uniform attention rows.
        let mask = causal_mask(4);
        let probs = mask.softmax_lastdim();
        for (i, row) in probs.data().chunks(4).enumerate() {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            for (j, &p) in row.iter().enumerate() {
                if j > i {
                    assert!(p < 1e-6, "future position leaked");
                } else {
                    assert!((p - 1.0 / (i + 1) as f32).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn causal_blocks_future_information() {
        let mut rng = Prng::new(1);
        let attn = MultiHeadAttention::new(8, 2, true, 0.0, &mut rng);
        let x1 = rng.randn(&[1, 5, 8]);
        // Change only the last timestep.
        let mut x2 = x1.clone();
        for i in 0..8 {
            let flat = 4 * 8 + i;
            x2.data_mut()[flat] += 10.0;
        }
        let y1 = attn.forward(&Var::constant(x1), &mut Ctx::eval()).to_array();
        let y2 = attn.forward(&Var::constant(x2), &mut Ctx::eval()).to_array();
        // Positions 0..4 must be identical; position 4 must differ.
        let per_t = 8;
        for t in 0..4 {
            for i in 0..per_t {
                assert!((y1.data()[t * per_t + i] - y2.data()[t * per_t + i]).abs() < 1e-5);
            }
        }
        let last_diff: f32 = (0..per_t)
            .map(|i| (y1.data()[4 * per_t + i] - y2.data()[4 * per_t + i]).abs())
            .sum();
        assert!(last_diff > 1e-3);
    }

    #[test]
    fn bidirectional_sees_future() {
        let mut rng = Prng::new(2);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x1 = rng.randn(&[1, 5, 8]);
        let mut x2 = x1.clone();
        for i in 0..8 {
            x2.data_mut()[4 * 8 + i] += 10.0;
        }
        let y1 = attn.forward(&Var::constant(x1), &mut Ctx::eval()).to_array();
        let y2 = attn.forward(&Var::constant(x2), &mut Ctx::eval()).to_array();
        // Even position 0 changes: full temporal access.
        let first_diff: f32 = (0..8).map(|i| (y1.data()[i] - y2.data()[i]).abs()).sum();
        assert!(first_diff > 1e-4);
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = Prng::new(3);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 8]));
        let loss = attn.forward(&x, &mut Ctx::train(9)).powf(2.0).sum();
        loss.backward();
        for p in attn.parameters() {
            let g = p.grad().expect("missing grad");
            assert!(g.l2_norm() > 0.0);
        }
    }

    fn assert_bits_eq(a: &NdArray, b: &NdArray, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
        for (i, (x, y)) in a.data().iter().zip(b.data().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: bit mismatch at {i}: {x} vs {y}");
        }
    }

    /// The fused forward must reproduce the composed path bit for bit —
    /// value and every projection gradient — in eval mode and in training
    /// with live attention dropout (same RNG stream), causal and
    /// bidirectional.
    #[test]
    fn fused_path_matches_composed_path_bitwise() {
        for causal in [false, true] {
            for dropout in [0.0f32, 0.25] {
                let mk = || {
                    let mut rng = Prng::new(77);
                    MultiHeadAttention::new(8, 2, causal, dropout, &mut rng)
                };
                let mut rng = Prng::new(78);
                let x0 = rng.randn(&[2, 6, 8]);
                let run = |attn: &MultiHeadAttention, composed: bool| {
                    let body = || {
                        let x = Var::constant(x0.clone());
                        let y = attn.forward(&x, &mut Ctx::train(5));
                        let loss = y.powf(2.0).sum();
                        loss.backward();
                        let grads: Vec<NdArray> =
                            attn.parameters().iter().map(|p| p.grad().unwrap()).collect();
                        (y.to_array(), grads)
                    };
                    if composed {
                        timedrl_tensor::with_composed_attention(body)
                    } else {
                        body()
                    }
                };
                let a1 = mk();
                let a2 = mk();
                let (y_fused, g_fused) = run(&a1, false);
                let (y_comp, g_comp) = run(&a2, true);
                let what = format!("causal={causal} dropout={dropout}");
                assert_bits_eq(&y_fused, &y_comp, &format!("output {what}"));
                for (i, (gf, gc)) in g_fused.iter().zip(g_comp.iter()).enumerate() {
                    assert_bits_eq(gf, gc, &format!("param grad {i} {what}"));
                }
            }
        }
    }

    #[test]
    fn cached_causal_mask_tracks_sequence_length() {
        let mut rng = Prng::new(21);
        let attn = MultiHeadAttention::new(8, 2, true, 0.0, &mut rng);
        assert_eq!(attn.cached_mask(4), causal_mask(4));
        // Re-borrowing at the same length returns the cached array...
        assert_eq!(attn.cached_mask(4), causal_mask(4));
        // ...and a different length rebuilds.
        assert_eq!(attn.cached_mask(7), causal_mask(7));
        assert_eq!(attn.cached_mask(4), causal_mask(4));
    }
}
// (appended tests for the introspection API)
#[cfg(test)]
mod weight_tests {
    use super::*;

    #[test]
    fn attention_weights_are_row_stochastic() {
        let mut rng = Prng::new(10);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 5, 8]));
        let (_, w) = attn.forward_with_weights(&x, &mut Ctx::eval());
        assert_eq!(w.shape(), vec![2, 2, 5, 5]);
        let arr = w.to_array();
        for row in arr.data().chunks(5) {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_weights_have_zero_upper_triangle() {
        let mut rng = Prng::new(11);
        let attn = MultiHeadAttention::new(8, 2, true, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[1, 4, 8]));
        let (_, w) = attn.forward_with_weights(&x, &mut Ctx::eval());
        let arr = w.to_array();
        for h in 0..2 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert!(arr.at(&[0, h, i, j]) < 1e-6, "future leak at ({i},{j})");
                }
            }
        }
    }

    /// `forward` takes the fused path, `forward_with_weights` the composed
    /// one — their outputs must still agree bit for bit (the fused kernel's
    /// exactness contract), causal and bidirectional.
    #[test]
    fn forward_and_forward_with_weights_agree() {
        for causal in [false, true] {
            let mut rng = Prng::new(12);
            let attn = MultiHeadAttention::new(8, 2, causal, 0.0, &mut rng);
            let x = Var::constant(rng.randn(&[2, 4, 8]));
            let a = attn.forward(&x, &mut Ctx::eval()).to_array();
            let (b, _) = attn.forward_with_weights(&x, &mut Ctx::eval());
            let bv = b.to_array();
            assert_eq!(a.shape(), bv.shape());
            for (x1, x2) in a.data().iter().zip(bv.data().iter()) {
                assert_eq!(x1.to_bits(), x2.to_bits(), "fused vs composed (causal={causal})");
            }
        }
    }
}
