//! Multi-head scaled-dot-product self-attention.

use crate::linear::Linear;
use crate::module::{Ctx, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// Multi-head self-attention over `[B, T, D]` sequences.
///
/// With `causal = false` this is the bidirectional attention of the
/// Transformer *encoder* TimeDRL uses as its backbone; with `causal = true`
/// each position attends only to itself and earlier positions, giving the
/// Transformer *decoder* variant of the Table VIII encoder ablation.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    n_heads: usize,
    head_dim: usize,
    causal: bool,
    attn_dropout: f32,
}

impl MultiHeadAttention {
    /// Creates an attention layer; `d_model` must be divisible by `n_heads`.
    pub fn new(d_model: usize, n_heads: usize, causal: bool, dropout: f32, rng: &mut Prng) -> Self {
        assert!(n_heads > 0 && d_model % n_heads == 0, "d_model must divide by n_heads");
        Self {
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            n_heads,
            head_dim: d_model / n_heads,
            causal,
            attn_dropout: dropout,
        }
    }

    /// Splits `[B, T, D]` into `[B*H, T, Dh]` per-head batches.
    fn split_heads(&self, x: &Var, b: usize, t: usize) -> Var {
        x.reshape(&[b, t, self.n_heads, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * self.n_heads, t, self.head_dim])
    }

    /// Applies self-attention; input and output are `[B, T, D]`.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        self.attend(x, ctx, false).0
    }

    /// Applies self-attention and also returns the post-softmax attention
    /// probabilities `[B, H, T, T]` (pre-dropout) for interpretability —
    /// e.g. inspecting what the `[CLS]` token attends to.
    pub fn forward_with_weights(&self, x: &Var, ctx: &mut Ctx) -> (Var, Var) {
        let (out, weights) = self.attend(x, ctx, true);
        (out, weights.expect("weights requested"))
    }

    /// Shared attention core. The `[B, H, T, T]` weights view is a full
    /// copy of the probability tensor, so it is materialized only when
    /// `want_weights` asks for it — `forward` used to pay for it on every
    /// training step and drop it immediately.
    fn attend(&self, x: &Var, ctx: &mut Ctx, want_weights: bool) -> (Var, Option<Var>) {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "attention expects [B, T, D]");
        let (b, t, d) = (shape[0], shape[1], shape[2]);

        let q = self.split_heads(&self.wq.forward(x), b, t);
        let k = self.split_heads(&self.wk.forward(x), b, t);
        let v = self.split_heads(&self.wv.forward(x), b, t);

        // [B*H, T, T]. matmul_t reads Kᵀ through strided packing, so
        // neither the forward scores nor their backward products ever
        // materialize a transposed copy (or its graph node).
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut scores = q.matmul_t(&k).scale(scale);
        if self.causal {
            scores = scores.add(&Var::constant(causal_mask(t)));
        }
        let probs = scores.softmax_lastdim();
        let weights = want_weights.then(|| probs.reshape(&[b, self.n_heads, t, t]));
        let mut attn = probs;
        if self.attn_dropout > 0.0 {
            attn = attn.dropout(self.attn_dropout, ctx.training, &mut ctx.rng);
        }
        let out = attn
            .matmul(&v)
            .reshape(&[b, self.n_heads, t, self.head_dim])
            .permute(&[0, 2, 1, 3])
            .reshape(&[b, t, d]);
        (self.wo.forward(&out), weights)
    }

    /// Whether this layer applies a causal mask.
    pub fn is_causal(&self) -> bool {
        self.causal
    }
}

impl Module for MultiHeadAttention {
    fn parameters(&self) -> Vec<Var> {
        [&self.wq, &self.wk, &self.wv, &self.wo]
            .iter()
            .flat_map(|l| l.parameters())
            .collect()
    }
}

/// Additive causal mask: 0 on and below the diagonal, a large negative
/// number above it (softmax maps those positions to ~0 probability).
fn causal_mask(t: usize) -> NdArray {
    NdArray::from_fn(&[t, t], |flat| {
        let (i, j) = (flat / t, flat % t);
        if j > i {
            -1e9
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_preserved() {
        let mut rng = Prng::new(0);
        let attn = MultiHeadAttention::new(16, 4, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 7, 16]));
        assert_eq!(attn.forward(&x, &mut Ctx::eval()).shape(), vec![2, 7, 16]);
    }

    #[test]
    fn attention_rows_are_probabilities() {
        // Reconstruct the internal softmax on a known path: uniform input
        // must produce uniform attention rows.
        let mask = causal_mask(4);
        let probs = mask.softmax_lastdim();
        for (i, row) in probs.data().chunks(4).enumerate() {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
            for (j, &p) in row.iter().enumerate() {
                if j > i {
                    assert!(p < 1e-6, "future position leaked");
                } else {
                    assert!((p - 1.0 / (i + 1) as f32).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn causal_blocks_future_information() {
        let mut rng = Prng::new(1);
        let attn = MultiHeadAttention::new(8, 2, true, 0.0, &mut rng);
        let x1 = rng.randn(&[1, 5, 8]);
        // Change only the last timestep.
        let mut x2 = x1.clone();
        for i in 0..8 {
            let flat = 4 * 8 + i;
            x2.data_mut()[flat] += 10.0;
        }
        let y1 = attn.forward(&Var::constant(x1), &mut Ctx::eval()).to_array();
        let y2 = attn.forward(&Var::constant(x2), &mut Ctx::eval()).to_array();
        // Positions 0..4 must be identical; position 4 must differ.
        let per_t = 8;
        for t in 0..4 {
            for i in 0..per_t {
                assert!((y1.data()[t * per_t + i] - y2.data()[t * per_t + i]).abs() < 1e-5);
            }
        }
        let last_diff: f32 = (0..per_t)
            .map(|i| (y1.data()[4 * per_t + i] - y2.data()[4 * per_t + i]).abs())
            .sum();
        assert!(last_diff > 1e-3);
    }

    #[test]
    fn bidirectional_sees_future() {
        let mut rng = Prng::new(2);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x1 = rng.randn(&[1, 5, 8]);
        let mut x2 = x1.clone();
        for i in 0..8 {
            x2.data_mut()[4 * 8 + i] += 10.0;
        }
        let y1 = attn.forward(&Var::constant(x1), &mut Ctx::eval()).to_array();
        let y2 = attn.forward(&Var::constant(x2), &mut Ctx::eval()).to_array();
        // Even position 0 changes: full temporal access.
        let first_diff: f32 = (0..8).map(|i| (y1.data()[i] - y2.data()[i]).abs()).sum();
        assert!(first_diff > 1e-4);
    }

    #[test]
    fn gradients_flow_to_all_projections() {
        let mut rng = Prng::new(3);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 8]));
        let loss = attn.forward(&x, &mut Ctx::train(9)).powf(2.0).sum();
        loss.backward();
        for p in attn.parameters() {
            let g = p.grad().expect("missing grad");
            assert!(g.l2_norm() > 0.0);
        }
    }
}
// (appended tests for the introspection API)
#[cfg(test)]
mod weight_tests {
    use super::*;

    #[test]
    fn attention_weights_are_row_stochastic() {
        let mut rng = Prng::new(10);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 5, 8]));
        let (_, w) = attn.forward_with_weights(&x, &mut Ctx::eval());
        assert_eq!(w.shape(), vec![2, 2, 5, 5]);
        let arr = w.to_array();
        for row in arr.data().chunks(5) {
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_weights_have_zero_upper_triangle() {
        let mut rng = Prng::new(11);
        let attn = MultiHeadAttention::new(8, 2, true, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[1, 4, 8]));
        let (_, w) = attn.forward_with_weights(&x, &mut Ctx::eval());
        let arr = w.to_array();
        for h in 0..2 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    assert!(arr.at(&[0, h, i, j]) < 1e-6, "future leak at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn forward_and_forward_with_weights_agree() {
        let mut rng = Prng::new(12);
        let attn = MultiHeadAttention::new(8, 2, false, 0.0, &mut rng);
        let x = Var::constant(rng.randn(&[2, 4, 8]));
        let a = attn.forward(&x, &mut Ctx::eval()).to_array();
        let (b, _) = attn.forward_with_weights(&x, &mut Ctx::eval());
        assert_eq!(a, b.to_array());
    }
}
