//! Temporal Convolutional Network (Bai et al., 2018).
//!
//! Dilated causal convolutions with residual connections. Serves two roles
//! in the reproduction: the end-to-end TCN forecasting baseline of
//! Table III/IV and the "TCN" encoder row of the Table VIII ablation.

use crate::conv::Conv1d;
use crate::module::{Ctx, Module};
use timedrl_tensor::{Prng, Var};

/// A causal dilated convolution: left-pads by `(k-1)·dilation` and trims the
/// tail so output positions never see the future.
pub struct CausalConv1d {
    conv: Conv1d,
    trim: usize,
}

impl CausalConv1d {
    /// Creates a causal convolution with the given dilation (stride 1).
    pub fn new(c_in: usize, c_out: usize, kernel: usize, dilation: usize, rng: &mut Prng) -> Self {
        let pad = (kernel - 1) * dilation;
        Self { conv: Conv1d::new(c_in, c_out, kernel, 1, pad, dilation, rng), trim: pad }
    }

    /// Applies the convolution; output length equals input length.
    pub fn forward(&self, x: &Var) -> Var {
        let y = self.conv.forward(x);
        if self.trim == 0 {
            return y;
        }
        let t = y.shape()[2];
        y.slice(2, 0, t - self.trim)
    }
}

impl Module for CausalConv1d {
    fn parameters(&self) -> Vec<Var> {
        self.conv.parameters()
    }
}

/// One TCN residual block: two causal dilated convs with ReLU + dropout, and
/// a 1×1 shortcut when channel counts differ.
pub struct TemporalBlock {
    conv1: CausalConv1d,
    conv2: CausalConv1d,
    downsample: Option<Conv1d>,
    dropout: f32,
}

impl TemporalBlock {
    /// Creates a block at the given dilation level.
    pub fn new(c_in: usize, c_out: usize, kernel: usize, dilation: usize, dropout: f32, rng: &mut Prng) -> Self {
        Self {
            conv1: CausalConv1d::new(c_in, c_out, kernel, dilation, rng),
            conv2: CausalConv1d::new(c_out, c_out, kernel, dilation, rng),
            downsample: if c_in != c_out {
                Some(Conv1d::new(c_in, c_out, 1, 1, 0, 1, rng))
            } else {
                None
            },
            dropout,
        }
    }

    /// Applies the block to `[B, C, T]` input.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let h = self
            .conv1
            .forward(x)
            .relu()
            .dropout(self.dropout, ctx.training, &mut ctx.rng);
        let h = self
            .conv2
            .forward(&h)
            .relu()
            .dropout(self.dropout, ctx.training, &mut ctx.rng);
        let shortcut = match &self.downsample {
            Some(d) => d.forward(x),
            None => x.clone(),
        };
        h.add(&shortcut).relu()
    }
}

impl Module for TemporalBlock {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.conv1.parameters();
        ps.extend(self.conv2.parameters());
        if let Some(d) = &self.downsample {
            ps.extend(d.parameters());
        }
        ps
    }
}

/// A full TCN: stacked temporal blocks with dilation doubling per level
/// (1, 2, 4, ...), giving an exponentially growing receptive field.
pub struct Tcn {
    blocks: Vec<TemporalBlock>,
}

impl Tcn {
    /// `channels` lists the output width of each level.
    pub fn new(c_in: usize, channels: &[usize], kernel: usize, dropout: f32, rng: &mut Prng) -> Self {
        assert!(!channels.is_empty(), "TCN needs at least one level");
        let mut blocks = Vec::with_capacity(channels.len());
        let mut prev = c_in;
        for (level, &c) in channels.iter().enumerate() {
            blocks.push(TemporalBlock::new(prev, c, kernel, 1 << level, dropout, rng));
            prev = c;
        }
        Self { blocks }
    }

    /// Applies all blocks; `[B, C_in, T] -> [B, channels.last(), T]`.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut h = x.clone();
        for b in &self.blocks {
            h = b.forward(&h, ctx);
        }
        h
    }

    /// Receptive field in timesteps: `1 + 2(k-1)(2^L - 1)`.
    pub fn receptive_field(&self, kernel: usize) -> usize {
        let l = self.blocks.len() as u32;
        1 + 2 * (kernel - 1) * ((1usize << l) - 1)
    }
}

impl Module for Tcn {
    fn parameters(&self) -> Vec<Var> {
        self.blocks.iter().flat_map(|b| b.parameters()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::NdArray;

    #[test]
    fn causal_conv_preserves_length() {
        let mut rng = Prng::new(0);
        let c = CausalConv1d::new(2, 3, 3, 2, &mut rng);
        let x = Var::constant(rng.randn(&[1, 2, 10]));
        assert_eq!(c.forward(&x).shape(), vec![1, 3, 10]);
    }

    #[test]
    fn causal_conv_never_sees_future() {
        let mut rng = Prng::new(1);
        let c = CausalConv1d::new(1, 1, 3, 1, &mut rng);
        let x1 = rng.randn(&[1, 1, 8]);
        let mut x2 = x1.clone();
        x2.data_mut()[7] += 100.0; // perturb only the last step
        let y1 = c.forward(&Var::constant(x1)).to_array();
        let y2 = c.forward(&Var::constant(x2)).to_array();
        for t in 0..7 {
            assert!((y1.data()[t] - y2.data()[t]).abs() < 1e-5, "leak at t={t}");
        }
        assert!((y1.data()[7] - y2.data()[7]).abs() > 1.0);
    }

    #[test]
    fn tcn_shapes_and_grads() {
        let mut rng = Prng::new(2);
        let tcn = Tcn::new(3, &[4, 4], 3, 0.1, &mut rng);
        let x = Var::constant(rng.randn(&[2, 3, 16]));
        let y = tcn.forward(&x, &mut Ctx::train(3));
        assert_eq!(y.shape(), vec![2, 4, 16]);
        y.powf(2.0).mean().backward();
        for p in tcn.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn residual_identity_path_works() {
        // With matching channels the shortcut is the identity; zero conv
        // weights should reproduce relu(x).
        let mut rng = Prng::new(3);
        let block = TemporalBlock::new(2, 2, 3, 1, 0.0, &mut rng);
        for p in block.conv1.parameters().iter().chain(block.conv2.parameters().iter()) {
            p.set_value(NdArray::zeros(&p.shape()));
        }
        let x = Var::constant(rng.randn(&[1, 2, 6]));
        let y = block.forward(&x, &mut Ctx::eval());
        assert_eq!(y.to_array(), x.to_array().map(|v| v.max(0.0)));
    }

    #[test]
    fn receptive_field_grows_exponentially() {
        let mut rng = Prng::new(4);
        let t2 = Tcn::new(1, &[4, 4], 3, 0.0, &mut rng);
        let t4 = Tcn::new(1, &[4, 4, 4, 4], 3, 0.0, &mut rng);
        assert_eq!(t2.receptive_field(3), 1 + 2 * 2 * 3);
        assert!(t4.receptive_field(3) > 4 * t2.receptive_field(3) / 2);
    }
}
