//! First-order optimizers: SGD (with momentum), Adam, and AdamW.
//!
//! The paper trains with AdamW + weight decay (Section V.4); SGD and Adam
//! exist for baselines and tests.

use timedrl_tensor::{NdArray, Var};

/// Common optimizer interface over a fixed parameter set.
pub trait Optimizer {
    /// Applies one update from the currently accumulated gradients.
    fn step(&mut self);
    /// Clears all parameter gradients.
    fn zero_grad(&self);
    /// The parameters this optimizer updates.
    fn parameters(&self) -> &[Var];
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Overrides the learning rate (used by schedulers).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    velocity: Vec<NdArray>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| NdArray::zeros(&p.shape())).collect();
        Self { params, lr, momentum, velocity }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        // Fused in-place update: per element the same operations as the
        // old chained array ops (`v*mom + g`, `w - v*lr`), without the
        // intermediate arrays.
        let (lr, mom) = (self.lr, self.momentum);
        for (p, v) in self.params.iter().zip(self.velocity.iter_mut()) {
            let Some(g) = p.grad_ref() else { continue };
            if mom > 0.0 {
                p.update_value(|w| {
                    for ((wj, vj), &gj) in
                        w.data_mut().iter_mut().zip(v.data_mut()).zip(g.data())
                    {
                        let nv = *vj * mom + gj;
                        *vj = nv;
                        *wj -= nv * lr;
                    }
                });
            } else {
                p.update_value(|w| {
                    for (wj, &gj) in w.data_mut().iter_mut().zip(g.data()) {
                        *wj -= gj * lr;
                    }
                });
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// A snapshot of Adam-family optimizer state — the first (`m`) and second
/// (`v`) moment estimates plus the bias-correction step count `t` — in the
/// optimizer's parameter order. This is what a resumable training
/// checkpoint must carry in addition to the weights: restarting AdamW with
/// zeroed moments changes every subsequent update, so bit-exact resume
/// (DESIGN.md §11) round-trips this through
/// `timedrl-core`'s training-state checkpoint.
#[derive(Debug, Clone)]
pub struct OptimState {
    /// First-moment (mean) estimates, one per parameter.
    pub m: Vec<NdArray>,
    /// Second-moment (uncentered variance) estimates, one per parameter.
    pub v: Vec<NdArray>,
    /// Completed optimizer steps (drives bias correction).
    pub t: u32,
}

/// Shared Adam machinery; `decoupled` selects AdamW's weight decay.
struct AdamState {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    decoupled: bool,
    m: Vec<NdArray>,
    v: Vec<NdArray>,
    t: u32,
}

impl AdamState {
    fn new(params: Vec<Var>, lr: f32, weight_decay: f32, decoupled: bool) -> Self {
        let m = params.iter().map(|p| NdArray::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| NdArray::zeros(&p.shape())).collect();
        Self { params, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay, decoupled, m, v, t: 0 }
    }

    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        // Fused in-place update. All scalar factors are hoisted exactly as
        // the old chained array ops computed them (`scale(1.0 / bc1)`
        // multiplies every element by the precomputed reciprocal), so each
        // element sees the identical f32 operation sequence:
        //   g' = g + w*wd_coupled
        //   m  = m*b1 + g'*(1-b1);  v = v*b2 + (g'*g')*(1-b2)
        //   u  = (m*(1/bc1)) / (sqrt(v*(1/bc2)) + eps) * lr
        //   w  = w*(1-lr*wd_decoupled) - u
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let (ob1, ob2) = (1.0 - b1, 1.0 - b2);
        let (rb1, rb2) = (1.0 / bc1, 1.0 / bc2);
        let coupled_wd = if self.decoupled { 0.0 } else { self.weight_decay };
        let wd = if self.decoupled { self.lr * self.weight_decay } else { 0.0 };
        let decay = 1.0 - wd;
        for i in 0..self.params.len() {
            let p = &self.params[i];
            let Some(g) = p.grad_ref() else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            p.update_value(|w| {
                let it = w.data_mut().iter_mut().zip(g.data()).zip(m.data_mut()).zip(v.data_mut());
                for (((wj, &gj), mj), vj) in it {
                    let mut gj = gj;
                    if coupled_wd > 0.0 {
                        // Classic Adam folds L2 regularization into the
                        // gradient.
                        gj += *wj * coupled_wd;
                    }
                    let mn = *mj * b1 + gj * ob1;
                    *mj = mn;
                    let vn = *vj * b2 + gj * gj * ob2;
                    *vj = vn;
                    let upd = mn * rb1 / ((vn * rb2).sqrt() + eps) * lr;
                    if wd > 0.0 {
                        // AdamW: decay applied directly to weights,
                        // decoupled from the adaptive gradient scaling.
                        *wj *= decay;
                    }
                    *wj -= upd;
                }
            });
        }
    }
}

/// Adam (Kingma & Ba) with optional coupled L2 regularization.
pub struct Adam(AdamState);

impl Adam {
    /// Creates an Adam optimizer.
    pub fn new(params: Vec<Var>, lr: f32) -> Self {
        Self(AdamState::new(params, lr, 0.0, false))
    }

    /// Adam with coupled L2 weight decay.
    pub fn with_l2(params: Vec<Var>, lr: f32, weight_decay: f32) -> Self {
        Self(AdamState::new(params, lr, weight_decay, false))
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.0.step();
    }

    fn zero_grad(&self) {
        for p in &self.0.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.0.params
    }

    fn learning_rate(&self) -> f32 {
        self.0.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.0.lr = lr;
    }
}

/// AdamW (Loshchilov & Hutter): Adam with *decoupled* weight decay — the
/// optimizer the TimeDRL paper uses for all experiments.
pub struct AdamW(AdamState);

impl AdamW {
    /// Creates an AdamW optimizer with the given decay.
    pub fn new(params: Vec<Var>, lr: f32, weight_decay: f32) -> Self {
        Self(AdamState::new(params, lr, weight_decay, true))
    }

    /// Copies out the optimizer state (moments + step count) for a
    /// training checkpoint.
    pub fn export_state(&self) -> OptimState {
        OptimState { m: self.0.m.clone(), v: self.0.v.clone(), t: self.0.t }
    }

    /// Restores state exported by [`AdamW::export_state`]. Counts and
    /// shapes must match this optimizer's parameters exactly.
    ///
    /// # Errors
    /// Returns a description of the first mismatch; on error the optimizer
    /// is left unchanged.
    pub fn import_state(&mut self, state: OptimState) -> Result<(), String> {
        let n = self.0.params.len();
        if state.m.len() != n || state.v.len() != n {
            return Err(format!(
                "optimizer state has {} m / {} v arrays, expected {n}",
                state.m.len(),
                state.v.len()
            ));
        }
        for (i, p) in self.0.params.iter().enumerate() {
            let shape = p.shape();
            if state.m[i].shape() != shape.as_slice() || state.v[i].shape() != shape.as_slice() {
                return Err(format!(
                    "optimizer state {i}: moment shapes m {:?} / v {:?} vs parameter {:?}",
                    state.m[i].shape(),
                    state.v[i].shape(),
                    shape
                ));
            }
        }
        self.0.m = state.m;
        self.0.v = state.v;
        self.0.t = state.t;
        Ok(())
    }
}

impl Optimizer for AdamW {
    fn step(&mut self) {
        self.0.step();
    }

    fn zero_grad(&self) {
        for p in &self.0.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.0.params
    }

    fn learning_rate(&self) -> f32 {
        self.0.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.0.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::Prng;

    /// Minimizes f(w) = ||w - target||^2 and returns the final distance.
    fn optimize(opt: &mut dyn Optimizer, w: &Var, target: &NdArray, steps: usize) -> f32 {
        for _ in 0..steps {
            opt.zero_grad();
            let loss = w.mse_loss(target);
            loss.backward();
            opt.step();
        }
        w.to_array().max_abs_diff(target)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let target = NdArray::from_slice(&[1.0, -2.0, 3.0]);
        let w = Var::parameter(NdArray::zeros(&[3]));
        let mut opt = Sgd::new(vec![w.clone()], 0.5, 0.0);
        assert!(optimize(&mut opt, &w, &target, 100) < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let target = NdArray::from_slice(&[5.0; 8]);
        let w1 = Var::parameter(NdArray::zeros(&[8]));
        let w2 = Var::parameter(NdArray::zeros(&[8]));
        let mut plain = Sgd::new(vec![w1.clone()], 0.05, 0.0);
        let mut momentum = Sgd::new(vec![w2.clone()], 0.05, 0.9);
        let d_plain = optimize(&mut plain, &w1, &target, 30);
        let d_momentum = optimize(&mut momentum, &w2, &target, 30);
        assert!(d_momentum < d_plain);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let target = NdArray::from_slice(&[0.5, -0.5]);
        let w = Var::parameter(NdArray::from_slice(&[10.0, -10.0]));
        let mut opt = Adam::new(vec![w.clone()], 0.3);
        assert!(optimize(&mut opt, &w, &target, 200) < 1e-2);
    }

    #[test]
    fn adamw_decays_unused_weights() {
        // A parameter with zero gradient should shrink under AdamW but stay
        // fixed under Adam-without-decay.
        let w_adamw = Var::parameter(NdArray::from_slice(&[4.0]));
        let w_adam = Var::parameter(NdArray::from_slice(&[4.0]));
        let mut adamw = AdamW::new(vec![w_adamw.clone()], 0.1, 0.1);
        let mut adam = Adam::new(vec![w_adam.clone()], 0.1);
        for _ in 0..10 {
            // Provide a zero gradient so only decay acts.
            w_adamw.backward_with(NdArray::zeros(&[1]));
            w_adam.backward_with(NdArray::zeros(&[1]));
            adamw.step();
            adam.step();
            adamw.zero_grad();
            adam.zero_grad();
        }
        assert!(w_adamw.to_array().data()[0] < 4.0);
        assert_eq!(w_adam.to_array().data()[0], 4.0);
    }

    #[test]
    fn adamw_trains_linear_regression() {
        // Full pipeline sanity: y = X w* recovered from noisy data.
        let mut rng = Prng::new(0);
        let x = rng.randn(&[64, 3]);
        let w_true = NdArray::from_slice(&[1.5, -2.0, 0.5]).reshape(&[3, 1]).unwrap();
        let y = timedrl_tensor::matmul(&x, &w_true).unwrap();
        let w = Var::parameter(rng.randn(&[3, 1]).scale(0.1));
        let mut opt = AdamW::new(vec![w.clone()], 0.05, 0.0);
        for _ in 0..300 {
            opt.zero_grad();
            let pred = Var::constant(x.clone()).matmul(&w);
            pred.mse_loss(&y).backward();
            opt.step();
        }
        assert!(w.to_array().max_abs_diff(&w_true) < 0.05);
    }

    #[test]
    fn adamw_state_roundtrip_resumes_identically() {
        // Train 5 steps, snapshot, train 5 more; vs. restore the snapshot
        // into a fresh optimizer over the same weights and train 5 — the
        // trajectories must agree bit-for-bit.
        let target = NdArray::from_slice(&[1.0, -2.0, 3.0]);
        let w = Var::parameter(NdArray::zeros(&[3]));
        let mut opt = AdamW::new(vec![w.clone()], 0.1, 0.01);
        optimize(&mut opt, &w, &target, 5);
        let snapshot = opt.export_state();
        let w_at_snapshot = w.to_array();

        optimize(&mut opt, &w, &target, 5);
        let reference = w.to_array();

        let w2 = Var::parameter(w_at_snapshot);
        let mut opt2 = AdamW::new(vec![w2.clone()], 0.1, 0.01);
        opt2.import_state(snapshot).unwrap();
        optimize(&mut opt2, &w2, &target, 5);
        assert_eq!(w2.to_array(), reference, "resumed AdamW diverged");
    }

    #[test]
    fn adamw_import_rejects_mismatched_state() {
        let w = Var::parameter(NdArray::zeros(&[3]));
        let mut opt = AdamW::new(vec![w], 0.1, 0.0);
        let bad = OptimState { m: vec![NdArray::zeros(&[2])], v: vec![NdArray::zeros(&[3])], t: 1 };
        assert!(opt.import_state(bad).is_err());
        let wrong_count = OptimState { m: vec![], v: vec![], t: 0 };
        assert!(opt.import_state(wrong_count).is_err());
    }

    #[test]
    fn lr_scheduling_hooks() {
        let w = Var::parameter(NdArray::zeros(&[1]));
        let mut opt = AdamW::new(vec![w], 0.1, 0.0);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
