//! Quickstart: pre-train TimeDRL on unlabeled synthetic data and inspect
//! both embedding levels.
//!
//! ```text
//! cargo run -p timedrl --release --example quickstart
//! ```

use timedrl::{pretrain, Pooling, TimeDrl, TimeDrlConfig};
use timedrl_nn::Ctx;
use timedrl_tensor::{NdArray, Prng};

fn main() {
    // 1. Unlabeled multivariate windows: 128 samples of 64 steps, 1 channel.
    //    (Any [N, T, C] array works; here: noisy phase-shifted sinusoids.)
    let mut rng = Prng::new(42);
    let windows = NdArray::from_fn(&[128, 64, 1], |flat| {
        let sample = flat / 64;
        let step = flat % 64;
        (step as f32 * 0.3 + sample as f32 * 0.17).sin() + rng.normal_with(0.0, 0.1)
    });

    // 2. Configure and build the model. `forecasting(64)` gives the
    //    channel-independent setup: patches of 8 steps, d_model 32,
    //    2 Transformer blocks, lambda = 1.
    let mut cfg = TimeDrlConfig::forecasting(64);
    cfg.epochs = 5;
    println!("config: {} patches + [CLS], d_model {}", cfg.num_patches(), cfg.d_model);
    let model = TimeDrl::new(cfg);

    // 3. Self-supervised pre-training: the timestamp-predictive task
    //    (reconstruction, no masking) + the instance-contrastive task
    //    (two dropout views, stop-gradient, no negatives).
    let report = pretrain(&model, &windows).expect("pre-training failed");
    println!("\npretext loss per epoch:");
    for (epoch, ((total, pred), contrast)) in report
        .total
        .iter()
        .zip(&report.predictive)
        .zip(&report.contrastive)
        .enumerate()
    {
        println!("  epoch {epoch}: total {total:.4} = predictive {pred:.4} + λ·contrastive {contrast:+.4}");
    }

    // 4. Frozen embeddings for downstream tasks.
    let instance = model.embed_instances(&windows); // [128, 32] from [CLS]
    let timestamps = model.embed_timestamps_flat(&windows); // [128, 8*32]
    println!("\ninstance-level embeddings: {:?}", instance.shape());
    println!("timestamp-level embeddings (flat): {:?}", timestamps.shape());

    // 5. The dual-level disentanglement in action: the [CLS] embedding and
    //    GAP-pooled timestamp embeddings are different views of a sample.
    let enc = model.encode(&windows.slice(0, 0, 1).unwrap(), &mut Ctx::eval());
    let cls = enc.instance(Pooling::Cls).to_array();
    let gap = enc.instance(Pooling::Gap).to_array();
    println!("\n[CLS] vs GAP embedding distance for sample 0: {:.4}", cls.max_abs_diff(&gap));
    println!("done.");
}
