//! Forecasting with linear evaluation on a synthetic ETTh1: the full
//! Fig. 3 pipeline — chronological split, standardization, windowing,
//! channel-independence, self-supervised pre-training, frozen-encoder
//! ridge probe — exactly the protocol behind Table III.
//!
//! ```text
//! cargo run -p timedrl --release --example forecasting
//! ```

use timedrl::{forecast_linear_eval, prepare_forecast_data, ForecastTask, TimeDrlConfig};
use timedrl_data::synth::forecast::etth1;

fn main() {
    // Synthetic ETTh1: 7 channels, hourly cadence, daily/weekly seasonality.
    let dataset = etth1(3000, 7);
    println!(
        "dataset: {} ({} steps x {} features, {})",
        dataset.name,
        dataset.timesteps(),
        dataset.features(),
        dataset.frequency
    );

    // Task geometry: look back 64 steps, predict 24 (the shortest paper
    // horizon), windows every 8 steps.
    let task = ForecastTask { lookback: 64, horizon: 24, stride: 8 };
    let data = prepare_forecast_data(&dataset, &task);
    println!(
        "windows: {} train / {} test (channel-independent univariate folds)",
        data.train_inputs.shape()[0],
        data.test_inputs.shape()[0]
    );

    // Pre-train + frozen linear evaluation.
    let mut cfg = TimeDrlConfig::forecasting(task.lookback);
    cfg.epochs = 5;
    let (model, result, report) = forecast_linear_eval(&cfg, &data, 1.0);
    println!(
        "\npre-training loss: {:.4} -> {:.4}",
        report.total[0],
        report.final_loss().expect("at least one epoch ran")
    );
    println!("linear-probe test MSE: {:.4}", result.mse);
    println!("linear-probe test MAE: {:.4}", result.mae);

    // Context: the mean predictor on standardized data scores MSE ~ 1.
    println!("\n(reference: predicting the per-channel mean scores MSE ~ 1.0)");
    let improvement = (1.0 - result.mse) * 100.0;
    println!("TimeDRL's frozen embeddings beat it by {improvement:.1}%");
    let _ = model;
}
