//! Semi-supervised learning (the Fig. 5 scenario): when labels are scarce
//! but unlabeled data is plentiful, pre-training then fine-tuning beats
//! training from scratch — and the gap widens as labels shrink.
//!
//! ```text
//! cargo run -p timedrl --release --example semi_supervised
//! ```

use timedrl::{
    finetune_classification, pretrain, FinetuneConfig, TimeDrl, TimeDrlConfig,
};
use timedrl_data::synth::classify::pendigits;
use timedrl_tensor::Prng;

fn main() {
    let dataset = pendigits(300, 11);
    let (train, test) = dataset.train_test_split(0.6, &mut Prng::new(1)).unwrap();
    println!(
        "dataset: {} ({} train / {} test, {} classes)",
        dataset.name,
        train.len(),
        test.len(),
        dataset.n_classes
    );

    let ft = FinetuneConfig { epochs: 5, ..Default::default() };
    println!("\n{:>8} {:>14} {:>14}", "labels", "supervised", "TimeDRL (FT)");
    for frac in [0.1f32, 0.25, 0.5, 1.0] {
        // Supervised: a fresh encoder trained only on the labelled subset.
        let mut sup_cfg = TimeDrlConfig::classification(train.sample_len(), train.features());
        sup_cfg.epochs = 3;
        let supervised_model = TimeDrl::new(sup_cfg.clone());
        let supervised =
            finetune_classification(&supervised_model, &train, &test, &ft, frac, 2).accuracy;

        // TimeDRL (FT): pre-train on ALL training samples (labels unused),
        // then fine-tune encoder + head on the labelled subset.
        let ssl_model = TimeDrl::new(sup_cfg);
        pretrain(&ssl_model, &train.to_batch()).expect("pre-training failed");
        let ft_acc = finetune_classification(&ssl_model, &train, &test, &ft, frac, 2).accuracy;

        println!(
            "{:>7.0}% {:>13.2}% {:>13.2}%",
            frac * 100.0,
            supervised * 100.0,
            ft_acc * 100.0
        );
    }
    println!("\nExpected: TimeDRL (FT) dominates, especially at small label fractions —");
    println!("the unlabeled data does real work through the pretext tasks.");
}
