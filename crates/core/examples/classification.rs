//! Classification with linear evaluation on synthetic HAR: pre-train the
//! encoder, freeze it, and fit a logistic probe on the `[CLS]`
//! instance-level embeddings — the protocol behind Table V.
//!
//! ```text
//! cargo run -p timedrl --release --example classification
//! ```

use timedrl::{classification_linear_eval, TimeDrlConfig};
use timedrl_data::synth::classify::har;
use timedrl_eval::LogisticConfig;
use timedrl_tensor::Prng;

fn main() {
    // Synthetic HAR: 9 sensor channels, 6 activities, length-128 samples.
    let dataset = har(300, 7);
    println!(
        "dataset: {} ({} samples x {} steps x {} features, {} classes)",
        dataset.name,
        dataset.len(),
        dataset.sample_len(),
        dataset.features(),
        dataset.n_classes
    );
    let (train, test) = dataset.train_test_split(0.6, &mut Prng::new(0)).unwrap();
    println!("split: {} train / {} test", train.len(), test.len());

    // Classification uses channel mixing (no channel-independence) per the
    // paper's implementation notes.
    let mut cfg = TimeDrlConfig::classification(train.sample_len(), train.features());
    cfg.epochs = 5;
    let probe = LogisticConfig::default();
    let (model, report) = classification_linear_eval(&cfg, &train, &test, &probe);
    let (acc, mf1, kappa) = report.as_percentages();
    println!("\nlinear evaluation on frozen [CLS] embeddings:");
    println!("  accuracy : {acc:.2}%");
    println!("  macro-F1 : {mf1:.2}%");
    println!("  kappa    : {kappa:.2}%");
    println!("\n(chance accuracy for 6 balanced classes: 16.67%)");
    let _ = model;
}
