//! Anomaly detection with TimeDRL's timestamp-level embeddings — the
//! third downstream task the paper's introduction motivates (industrial
//! machine monitoring) and names as future work.
//!
//! Pre-train on normal data, score windows by the timestamp-predictive
//! head's reconstruction error, calibrate a threshold on held-out normal
//! data, then detect injected sensor faults.
//!
//! ```text
//! cargo run -p timedrl --release --example anomaly_detection
//! ```

use timedrl::{anomaly_scores, pretrain, AnomalyDetector, TimeDrl, TimeDrlConfig};
use timedrl_tensor::{NdArray, Prng};

/// Normal machine vibration: a stable periodic signature plus noise.
fn normal_windows(n: usize, t: usize, seed: u64) -> NdArray {
    let mut rng = Prng::new(seed);
    NdArray::from_fn(&[n, t, 1], |flat| {
        let i = flat / t;
        let step = flat % t;
        (step as f32 * 0.4 + i as f32 * 0.13).sin() + rng.normal_with(0.0, 0.05)
    })
}

/// Injects a fault burst (bearing spike) into the second half of each
/// window.
fn inject_faults(x: &NdArray, magnitude: f32) -> NdArray {
    let (n, t, _) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut y = x.clone();
    for i in 0..n {
        for dt in 0..4 {
            let at = (3 * t) / 4 + dt;
            let v = y.at(&[i, at, 0]);
            y.set(&[i, at, 0], v + magnitude * if dt % 2 == 0 { 1.0 } else { -1.0 });
        }
    }
    y
}

fn main() {
    let t = 64usize;
    // 1. Pre-train on normal operation only (no labels needed).
    let train = normal_windows(128, t, 0);
    let mut cfg = TimeDrlConfig::forecasting(t);
    cfg.epochs = 5;
    let model = TimeDrl::new(cfg);
    let report = pretrain(&model, &train).expect("pre-training failed");
    println!(
        "pre-trained on normal data: loss {:.4} -> {:.4}",
        report.total[0],
        report.final_loss().expect("at least one epoch ran")
    );

    // 2. Calibrate a detector on held-out normal windows (99th percentile).
    let calibration = normal_windows(64, t, 1);
    let cal_scores = anomaly_scores(&model, &calibration);
    let detector = AnomalyDetector::calibrate(&cal_scores.per_window, 0.99);
    println!("calibrated threshold: {:.4}", detector.threshold());

    // 3. Score a mixed test stream: 32 normal + 32 faulty windows.
    let normal_test = normal_windows(32, t, 2);
    let faulty_test = inject_faults(&normal_windows(32, t, 3), 5.0);
    let s_normal = anomaly_scores(&model, &normal_test);
    let s_faulty = anomaly_scores(&model, &faulty_test);

    let fp = detector.detect(&s_normal.per_window).iter().filter(|&&f| f).count();
    let tp = detector.detect(&s_faulty.per_window).iter().filter(|&&f| f).count();
    println!("\nnormal windows flagged : {fp}/32 (false positives)");
    println!("faulty windows flagged : {tp}/32 (true positives)");

    // 4. Localization: the per-patch scores point at the faulty region.
    let t_p = model.config().num_patches();
    let hottest = (0..t_p)
        .max_by(|&a, &b| {
            s_faulty.per_patch.at(&[0, a]).total_cmp(&s_faulty.per_patch.at(&[0, b]))
        })
        .unwrap();
    println!(
        "\nhottest patch of a faulty window: {hottest} of {t_p} (fault injected at 3/4 of the window)"
    );
    assert!(tp > fp, "detector must separate faulty from normal");
    println!("done.");
}
