//! Anomaly detection on timestamp-level embeddings — the third downstream
//! task the paper's introduction motivates ("timestamp-level embeddings
//! are effective for forecasting *and anomaly detection*") and names as
//! future work.
//!
//! The detector reuses the timestamp-predictive head: a window's patches
//! that the pre-trained model reconstructs poorly are anomalous. Scores
//! are per-patch reconstruction errors; a threshold calibrated on normal
//! validation data (quantile rule) yields binary detections.

use crate::model::TimeDrl;
use timedrl_nn::Ctx;
use timedrl_tensor::NdArray;

/// Per-window, per-patch anomaly scores.
#[derive(Debug, Clone)]
pub struct AnomalyScores {
    /// Reconstruction error per patch, `[N, T_p]`.
    pub per_patch: NdArray,
    /// Maximum patch error per window, `[N]` — the window-level score.
    pub per_window: Vec<f32>,
}

/// Scores a `[N, T, C]` batch by reconstruction error of the
/// timestamp-predictive head.
pub fn anomaly_scores(model: &TimeDrl, x: &NdArray) -> AnomalyScores {
    assert_eq!(x.rank(), 3, "anomaly_scores expects [N, T, C]");
    let n = x.shape()[0];
    let t_p = model.config().num_patches();
    let mut ctx = Ctx::eval();
    let mut per_patch = NdArray::zeros(&[n, t_p]);
    let chunk = 128;
    let mut start = 0;
    while start < n {
        let len = chunk.min(n - start);
        let slice = x.slice(0, start, len).expect("score chunk");
        let enc = model.encode(&slice, &mut ctx);
        let recon = model.predict_patches(&enc.timestamps()).to_array();
        // Mean squared error per patch token.
        let diff = recon.sub(&enc.x_patched);
        let err = diff.mul(&diff).mean_axis(2, false); // [len, T_p]
        for i in 0..len {
            for p in 0..t_p {
                per_patch.set(&[start + i, p], err.at(&[i, p]));
            }
        }
        start += len;
    }
    let per_window = (0..n)
        .map(|i| (0..t_p).map(|p| per_patch.at(&[i, p])).fold(f32::NEG_INFINITY, f32::max))
        .collect();
    AnomalyScores { per_patch, per_window }
}

/// A calibrated threshold detector over window-level scores.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyDetector {
    threshold: f32,
}

impl AnomalyDetector {
    /// Calibrates the threshold as the `quantile` (e.g. 0.99) of scores on
    /// normal data.
    pub fn calibrate(normal_scores: &[f32], quantile: f32) -> Self {
        assert!(!normal_scores.is_empty(), "need calibration scores");
        assert!((0.0..=1.0).contains(&quantile), "quantile in [0,1]");
        let mut sorted = normal_scores.to_vec();
        sorted.sort_by(f32::total_cmp);
        let idx = (((sorted.len() - 1) as f32) * quantile).round() as usize;
        Self { threshold: sorted[idx] }
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Flags each score above the threshold.
    pub fn detect(&self, scores: &[f32]) -> Vec<bool> {
        scores.iter().map(|&s| s > self.threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;
    use crate::trainer::pretrain;
    use timedrl_tensor::Prng;

    fn sine_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            ((flat % t) as f32 * 0.4 + i as f32 * 0.2).sin() + rng.normal_with(0.0, 0.05)
        })
    }

    /// Injects a spike anomaly into the middle patches of each window.
    fn inject_spikes(x: &NdArray, magnitude: f32) -> NdArray {
        let (n, t, _) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut y = x.clone();
        for i in 0..n {
            for dt in 0..3 {
                let at = t / 2 + dt;
                let v = y.at(&[i, at, 0]);
                y.set(&[i, at, 0], v + magnitude);
            }
        }
        y
    }

    fn trained_model(seed: u64) -> TimeDrl {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 5;
        cfg.seed = seed;
        let model = TimeDrl::new(cfg);
        pretrain(&model, &sine_windows(64, 32, seed ^ 1)).unwrap();
        model
    }

    #[test]
    fn anomalous_windows_score_higher() {
        let model = trained_model(0);
        let normal = sine_windows(16, 32, 99);
        let anomalous = inject_spikes(&normal, 6.0);
        let s_normal = anomaly_scores(&model, &normal);
        let s_anom = anomaly_scores(&model, &anomalous);
        let mean_n: f32 = s_normal.per_window.iter().sum::<f32>() / 16.0;
        let mean_a: f32 = s_anom.per_window.iter().sum::<f32>() / 16.0;
        assert!(mean_a > mean_n * 1.5, "anomalous {mean_a} vs normal {mean_n}");
    }

    #[test]
    fn per_patch_scores_localize_the_anomaly() {
        let model = trained_model(1);
        let normal = sine_windows(8, 32, 100);
        let anomalous = inject_spikes(&normal, 6.0);
        let scores = anomaly_scores(&model, &anomalous);
        // The spike sits at t = 16..19 -> patch index 2 of 4 (patch len 8).
        let t_p = model.config().num_patches();
        for i in 0..8 {
            let hottest = (0..t_p)
                .max_by(|&a, &b| {
                    scores.per_patch.at(&[i, a]).total_cmp(&scores.per_patch.at(&[i, b]))
                })
                .unwrap();
            assert_eq!(hottest, 2, "window {i} hottest patch {hottest}");
        }
    }

    #[test]
    fn detector_calibration_controls_false_positives() {
        let model = trained_model(2);
        let normal = sine_windows(64, 32, 101);
        let scores = anomaly_scores(&model, &normal);
        let detector = AnomalyDetector::calibrate(&scores.per_window, 0.95);
        let flags = detector.detect(&scores.per_window);
        let fp = flags.iter().filter(|&&f| f).count();
        // ~5% of calibration data sits above its own 95th percentile.
        assert!(fp <= 5, "false positives {fp}");
        // And injected anomalies are caught.
        let anomalous = inject_spikes(&sine_windows(16, 32, 102), 6.0);
        let s = anomaly_scores(&model, &anomalous);
        let caught = detector.detect(&s.per_window).iter().filter(|&&f| f).count();
        assert!(caught >= 14, "caught only {caught}/16");
    }

    #[test]
    fn detector_threshold_is_monotone_in_quantile() {
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let d90 = AnomalyDetector::calibrate(&scores, 0.90);
        let d99 = AnomalyDetector::calibrate(&scores, 0.99);
        assert!(d99.threshold() > d90.threshold());
    }
}
