//! Anomaly detection on timestamp-level embeddings — the third downstream
//! task the paper's introduction motivates ("timestamp-level embeddings
//! are effective for forecasting *and anomaly detection*") and names as
//! future work.
//!
//! The detector reuses the timestamp-predictive head: a window's patches
//! that the pre-trained model reconstructs poorly are anomalous. Scores
//! are per-patch reconstruction errors; a threshold calibrated on normal
//! validation data (quantile rule) yields binary detections.

use crate::model::TimeDrl;
use std::fmt;
use timedrl_nn::Ctx;
use timedrl_tensor::NdArray;

/// A typed failure of the anomaly-scoring pipeline, surfaced as a value so
/// unbounded-stream consumers never panic on bad input.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyError {
    /// Scoring input had the wrong rank (expects `[N, T, C]`).
    BadRank {
        /// The shape actually supplied.
        got: Vec<usize>,
    },
    /// Threshold calibration received no scores.
    EmptyScores,
    /// The calibration quantile fell outside `[0, 1]`.
    BadQuantile {
        /// The quantile actually supplied.
        got: f32,
    },
}

impl fmt::Display for AnomalyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyError::BadRank { got } => {
                write!(f, "anomaly scoring expects [N, T, C], got rank-{} {got:?}", got.len())
            }
            AnomalyError::EmptyScores => write!(f, "threshold calibration needs scores"),
            AnomalyError::BadQuantile { got } => {
                write!(f, "calibration quantile must lie in [0, 1], got {got}")
            }
        }
    }
}

impl std::error::Error for AnomalyError {}

/// Per-window, per-patch anomaly scores.
#[derive(Debug, Clone)]
pub struct AnomalyScores {
    /// Reconstruction error per patch, `[N, T_p]`.
    pub per_patch: NdArray,
    /// Maximum patch error per window, `[N]` — the window-level score.
    pub per_window: Vec<f32>,
}

/// Mean squared reconstruction error per patch token: `[N, T_p, W]`
/// reconstruction vs. target → `[N, T_p]`.
///
/// This is the single definition of the scoring arithmetic — the batch
/// path below and the streaming engine's per-hop scorer both call it, so
/// their scores agree bitwise whenever their embeddings do.
pub fn patch_errors(recon: &NdArray, target: &NdArray) -> NdArray {
    let diff = recon.sub(target);
    diff.mul(&diff).mean_axis(2, false)
}

/// Window-level score: the maximum per-patch error of one window's row.
pub fn window_score(per_patch: &[f32]) -> f32 {
    per_patch.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

/// Scores a `[N, T, C]` batch by reconstruction error of the
/// timestamp-predictive head.
///
/// # Errors
/// [`AnomalyError::BadRank`] for non-rank-3 input.
pub fn try_anomaly_scores(model: &TimeDrl, x: &NdArray) -> Result<AnomalyScores, AnomalyError> {
    if x.rank() != 3 {
        return Err(AnomalyError::BadRank { got: x.shape().to_vec() });
    }
    let n = x.shape()[0];
    let t_p = model.config().num_patches();
    let mut ctx = Ctx::eval();
    let mut per_patch = NdArray::zeros(&[n, t_p]);
    let chunk = 128;
    let mut start = 0;
    while start < n {
        let len = chunk.min(n - start);
        let slice = x.slice(0, start, len).expect("score chunk");
        let enc = model.encode(&slice, &mut ctx);
        let recon = model.predict_patches(&enc.timestamps()).to_array();
        let err = patch_errors(&recon, &enc.x_patched); // [len, T_p]
        for i in 0..len {
            for p in 0..t_p {
                per_patch.set(&[start + i, p], err.at(&[i, p]));
            }
        }
        start += len;
    }
    let per_window =
        (0..n).map(|i| window_score(&per_patch.data()[i * t_p..(i + 1) * t_p])).collect();
    Ok(AnomalyScores { per_patch, per_window })
}

/// Panicking form of [`try_anomaly_scores`], for offline pipelines where
/// a shape mismatch is a programming error.
pub fn anomaly_scores(model: &TimeDrl, x: &NdArray) -> AnomalyScores {
    match try_anomaly_scores(model, x) {
        Ok(s) => s,
        Err(e) => panic!("{e}"),
    }
}

/// The calibrated quantile threshold of an ascending-sorted score slice:
/// the nearest-rank index `round((len − 1) · q)`. Shared by offline
/// calibration and the streaming scorer's rolling recalibration, so both
/// produce identical thresholds from identical scores.
pub fn quantile_from_sorted(sorted: &[f32], quantile: f32) -> Result<f32, AnomalyError> {
    if sorted.is_empty() {
        return Err(AnomalyError::EmptyScores);
    }
    if !(0.0..=1.0).contains(&quantile) {
        return Err(AnomalyError::BadQuantile { got: quantile });
    }
    let idx = (((sorted.len() - 1) as f32) * quantile).round() as usize;
    Ok(sorted[idx])
}

/// A calibrated threshold detector over window-level scores.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyDetector {
    threshold: f32,
}

impl AnomalyDetector {
    /// Calibrates the threshold as the `quantile` (e.g. 0.99) of scores on
    /// normal data.
    ///
    /// # Errors
    /// [`AnomalyError::EmptyScores`] / [`AnomalyError::BadQuantile`] on
    /// degenerate input.
    pub fn try_calibrate(normal_scores: &[f32], quantile: f32) -> Result<Self, AnomalyError> {
        let mut sorted = normal_scores.to_vec();
        sorted.sort_unstable_by(f32::total_cmp);
        Ok(Self { threshold: quantile_from_sorted(&sorted, quantile)? })
    }

    /// Panicking form of [`AnomalyDetector::try_calibrate`].
    pub fn calibrate(normal_scores: &[f32], quantile: f32) -> Self {
        match Self::try_calibrate(normal_scores, quantile) {
            Ok(d) => d,
            Err(e) => panic!("{e}"),
        }
    }

    /// Wraps an externally computed threshold (e.g. the streaming scorer's
    /// rolling calibration) in the detector interface.
    pub fn with_threshold(threshold: f32) -> Self {
        Self { threshold }
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Flags each score above the threshold.
    pub fn detect(&self, scores: &[f32]) -> Vec<bool> {
        scores.iter().map(|&s| s > self.threshold).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;
    use crate::trainer::pretrain;
    use timedrl_tensor::Prng;

    fn sine_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            ((flat % t) as f32 * 0.4 + i as f32 * 0.2).sin() + rng.normal_with(0.0, 0.05)
        })
    }

    /// Injects a spike anomaly into the middle patches of each window.
    fn inject_spikes(x: &NdArray, magnitude: f32) -> NdArray {
        let (n, t, _) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut y = x.clone();
        for i in 0..n {
            for dt in 0..3 {
                let at = t / 2 + dt;
                let v = y.at(&[i, at, 0]);
                y.set(&[i, at, 0], v + magnitude);
            }
        }
        y
    }

    fn trained_model(seed: u64) -> TimeDrl {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 5;
        cfg.seed = seed;
        let model = TimeDrl::new(cfg);
        pretrain(&model, &sine_windows(64, 32, seed ^ 1)).unwrap();
        model
    }

    #[test]
    fn anomalous_windows_score_higher() {
        let model = trained_model(0);
        let normal = sine_windows(16, 32, 99);
        let anomalous = inject_spikes(&normal, 6.0);
        let s_normal = anomaly_scores(&model, &normal);
        let s_anom = anomaly_scores(&model, &anomalous);
        let mean_n: f32 = s_normal.per_window.iter().sum::<f32>() / 16.0;
        let mean_a: f32 = s_anom.per_window.iter().sum::<f32>() / 16.0;
        assert!(mean_a > mean_n * 1.5, "anomalous {mean_a} vs normal {mean_n}");
    }

    #[test]
    fn per_patch_scores_localize_the_anomaly() {
        let model = trained_model(1);
        let normal = sine_windows(8, 32, 100);
        let anomalous = inject_spikes(&normal, 6.0);
        let scores = anomaly_scores(&model, &anomalous);
        // The spike sits at t = 16..19 -> patch index 2 of 4 (patch len 8).
        let t_p = model.config().num_patches();
        for i in 0..8 {
            let hottest = (0..t_p)
                .max_by(|&a, &b| {
                    scores.per_patch.at(&[i, a]).total_cmp(&scores.per_patch.at(&[i, b]))
                })
                .unwrap();
            assert_eq!(hottest, 2, "window {i} hottest patch {hottest}");
        }
    }

    #[test]
    fn detector_calibration_controls_false_positives() {
        let model = trained_model(2);
        let normal = sine_windows(64, 32, 101);
        let scores = anomaly_scores(&model, &normal);
        let detector = AnomalyDetector::calibrate(&scores.per_window, 0.95);
        let flags = detector.detect(&scores.per_window);
        let fp = flags.iter().filter(|&&f| f).count();
        // ~5% of calibration data sits above its own 95th percentile.
        assert!(fp <= 5, "false positives {fp}");
        // And injected anomalies are caught.
        let anomalous = inject_spikes(&sine_windows(16, 32, 102), 6.0);
        let s = anomaly_scores(&model, &anomalous);
        let caught = detector.detect(&s.per_window).iter().filter(|&&f| f).count();
        assert!(caught >= 14, "caught only {caught}/16");
    }

    #[test]
    fn detector_threshold_is_monotone_in_quantile() {
        let scores: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let d90 = AnomalyDetector::calibrate(&scores, 0.90);
        let d99 = AnomalyDetector::calibrate(&scores, 0.99);
        assert!(d99.threshold() > d90.threshold());
    }

    // ------------------------------------------------------------------
    // Direct unit tests of the scoring primitives (no trained model).
    // ------------------------------------------------------------------

    #[test]
    fn patch_errors_hand_computed() {
        // recon - target per patch: patch 0 diffs [1, 1], patch 1 [0, 3].
        let recon = NdArray::from_vec(&[1, 2, 2], vec![2.0, 3.0, 5.0, 4.0]).unwrap();
        let target = NdArray::from_vec(&[1, 2, 2], vec![1.0, 2.0, 5.0, 1.0]).unwrap();
        let err = patch_errors(&recon, &target);
        assert_eq!(err.shape(), &[1, 2]);
        assert_eq!(err.at(&[0, 0]), 1.0); // (1² + 1²) / 2
        assert_eq!(err.at(&[0, 1]), 4.5); // (0² + 3²) / 2
    }

    #[test]
    fn window_score_is_the_patch_maximum() {
        assert_eq!(window_score(&[0.5, 4.5, 1.0]), 4.5);
        assert_eq!(window_score(&[-2.0, -7.0]), -2.0);
        // Empty row: identity of the max fold, never a panic.
        assert_eq!(window_score(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn quantile_from_sorted_nearest_rank() {
        let s = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_from_sorted(&s, 0.0).unwrap(), 1.0);
        assert_eq!(quantile_from_sorted(&s, 1.0).unwrap(), 5.0);
        assert_eq!(quantile_from_sorted(&s, 0.5).unwrap(), 3.0);
        // One-element calibration window: every quantile is that element.
        assert_eq!(quantile_from_sorted(&[7.5], 0.99).unwrap(), 7.5);
    }

    #[test]
    fn calibrate_matches_quantile_of_unsorted_scores() {
        let scores = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        let d = AnomalyDetector::try_calibrate(&scores, 0.5).unwrap();
        assert_eq!(d.threshold(), 3.0);
        assert_eq!(AnomalyDetector::with_threshold(3.0).threshold(), 3.0);
    }

    #[test]
    fn typed_error_paths() {
        // Rank error carries the offending shape.
        let model = {
            let mut cfg = TimeDrlConfig::forecasting(32);
            cfg.epochs = 0;
            TimeDrl::new(cfg)
        };
        let flat = NdArray::zeros(&[32, 1]);
        let err = try_anomaly_scores(&model, &flat).unwrap_err();
        assert_eq!(err, AnomalyError::BadRank { got: vec![32, 1] });
        assert!(err.to_string().contains("rank-2"), "{err}");

        // Calibration degeneracies.
        assert_eq!(
            AnomalyDetector::try_calibrate(&[], 0.9).unwrap_err(),
            AnomalyError::EmptyScores
        );
        let err = AnomalyDetector::try_calibrate(&[1.0], 1.5).unwrap_err();
        assert_eq!(err, AnomalyError::BadQuantile { got: 1.5 });
        assert!(err.to_string().contains("1.5"), "{err}");
    }

    #[test]
    fn scoring_one_window_and_detecting_nothing() {
        // N = 1 is the smallest well-formed scoring batch; an untrained
        // model still yields finite scores.
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.epochs = 0;
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        let model = TimeDrl::new(cfg);
        let one = sine_windows(1, 32, 7);
        let s = try_anomaly_scores(&model, &one).unwrap();
        assert_eq!(s.per_window.len(), 1);
        assert_eq!(s.per_patch.shape(), &[1, model.config().num_patches()]);
        assert!(s.per_window[0].is_finite());
        // Detecting over an empty score slice is a no-op, not an error.
        let d = AnomalyDetector::with_threshold(s.per_window[0]);
        assert!(d.detect(&[]).is_empty());
    }
}
