//! The two pretext tasks (Sections IV-B and IV-C) and their joint
//! objective (Eq. 19).

use crate::model::{Encoded, TimeDrl};
use timedrl_nn::Ctx;
use timedrl_tensor::{NdArray, Prng, Var};

/// Scalar diagnostics of one pretext-loss evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PretextBreakdown {
    /// Joint loss `L = L_P + λ·L_C` (Eq. 19).
    pub total: f32,
    /// Timestamp-predictive loss `L_P` (Eq. 9).
    pub predictive: f32,
    /// Instance-contrastive loss `L_C` (Eq. 18); in `[-1, 1]`.
    pub contrastive: f32,
}

/// Computes the joint TimeDRL pretext loss on a raw `[B, T, C]` batch.
///
/// The batch is optionally augmented (Table VI ablation; TimeDRL's default
/// is `Augmentation::None`), prepared once (Eq. 1), and passed through the
/// encoder **twice** — dropout randomness in `ctx` produces the two views
/// (Eqs. 10–11). Returns the differentiable total plus a scalar breakdown.
pub fn pretext_loss(
    model: &TimeDrl,
    batch: &NdArray,
    ctx: &mut Ctx,
    aug_rng: &mut Prng,
) -> (Var, PretextBreakdown) {
    let cfg = model.config();
    let augmented = cfg.augmentation.apply_batch(batch, aug_rng);
    let x_patched = model.prepare(&augmented);

    // Two stochastic views of the same input (Eqs. 10–11).
    let view1 = model.encode_patched(&x_patched, ctx);
    let view2 = model.encode_patched(&x_patched, ctx);

    let predictive = predictive_loss(model, &view1, &view2);
    let contrastive = contrastive_loss(model, &view1, &view2, ctx.training);
    let total = predictive.add(&contrastive.scale(cfg.lambda));

    let breakdown = PretextBreakdown {
        total: total.item(),
        predictive: predictive.item(),
        contrastive: contrastive.item(),
    };
    (total, breakdown)
}

/// Timestamp-predictive task (Eqs. 6–9): reconstruct the *unmasked*
/// patched input from each view's timestamp-level embeddings; average the
/// two MSEs.
///
/// Only `z_t` feeds the head, so the instance-level embedding `z_i` is
/// untouched by this loss — the disentanglement the paper emphasizes.
pub fn predictive_loss(model: &TimeDrl, view1: &Encoded, view2: &Encoded) -> Var {
    let target = &view1.x_patched;
    let l1 = model.predict_patches(&view1.timestamps()).mse_loss(target);
    let l2 = model.predict_patches(&view2.timestamps()).mse_loss(target);
    l1.add(&l2).scale(0.5)
}

/// Instance-contrastive task (Eqs. 12–18): negative-free SimSiam-style
/// alignment of the two `[CLS]` embeddings, with the asymmetric
/// prediction-head + stop-gradient pattern.
///
/// With `cfg.stop_gradient == false` (Table IX ablation) the target sides
/// keep their gradients, reproducing the collapse-prone variant.
pub fn contrastive_loss(model: &TimeDrl, view1: &Encoded, view2: &Encoded, training: bool) -> Var {
    let cfg = model.config();
    let z1 = view1.instance(cfg.pooling);
    let z2 = view2.instance(cfg.pooling);
    let p1 = model.project_instance(&z1, training);
    let p2 = model.project_instance(&z2, training);
    let target2 = if cfg.stop_gradient { z2.detach() } else { z2.clone() };
    let target1 = if cfg.stop_gradient { z1.detach() } else { z1.clone() };
    let l1 = p1.cosine_similarity_mean(&target2).neg(); // Eq. 16
    let l2 = p2.cosine_similarity_mean(&target1).neg(); // Eq. 17
    l1.add(&l2).scale(0.5) // Eq. 18
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;
    use crate::pooling::Pooling;
    use timedrl_data::Augmentation;
    use timedrl_nn::Module;

    fn small_model() -> TimeDrl {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        TimeDrl::new(cfg)
    }

    fn batch(model: &TimeDrl, n: usize, seed: u64) -> NdArray {
        let cfg = model.config();
        Prng::new(seed).randn(&[n, cfg.input_len, cfg.n_features])
    }

    #[test]
    fn loss_components_are_finite_and_composed() {
        let m = small_model();
        let x = batch(&m, 4, 0);
        let mut ctx = Ctx::train(1);
        let (total, b) = pretext_loss(&m, &x, &mut ctx, &mut Prng::new(2));
        assert!(b.total.is_finite() && b.predictive.is_finite() && b.contrastive.is_finite());
        assert!((b.total - (b.predictive + m.config().lambda * b.contrastive)).abs() < 1e-4);
        assert!(b.predictive >= 0.0, "MSE is non-negative");
        assert!((-1.0..=1.0).contains(&b.contrastive), "cosine range");
        total.backward();
    }

    #[test]
    fn predictive_loss_ignores_instance_embedding() {
        // The paper: "the instance-level embeddings z_i are not updated
        // from the MSE loss". Concretely: the gradient arriving at the
        // encoder *output* z must be zero at the [CLS] position (the head
        // reads only the z_t slice of Eq. 5). Note the CLS *input token*
        // still legitimately receives gradient through attention mixing.
        let m = small_model();
        let x = batch(&m, 3, 3);
        let x_patched = m.prepare(&x);
        let mut ctx = Ctx::eval(); // deterministic; gradient structure is what matters
        let v1 = m.encode_patched(&x_patched, &mut ctx);
        let v2 = m.encode_patched(&x_patched, &mut ctx);
        predictive_loss(&m, &v1, &v2).backward();
        let z_grad = v1.z.grad().expect("encoder output must be on the tape");
        let cls_slice = z_grad.slice(1, 0, 1).expect("cls grad slice");
        assert!(
            cls_slice.l2_norm() == 0.0,
            "z_i must receive zero predictive-loss gradient (got {})",
            cls_slice.l2_norm()
        );
        // Sanity: the timestamp positions do receive gradient.
        let rest = z_grad.slice(1, 1, z_grad.shape()[1] - 1).unwrap();
        assert!(rest.l2_norm() > 0.0);
    }

    #[test]
    fn stop_gradient_blocks_target_paths() {
        let m = small_model(); // stop_gradient: true
        let x = batch(&m, 3, 4);
        let x_patched = m.prepare(&x);
        let mut ctx = Ctx::train(5);
        let v1 = m.encode_patched(&x_patched, &mut ctx);
        let v2 = m.encode_patched(&x_patched, &mut ctx);
        let loss = contrastive_loss(&m, &v1, &v2, true);
        loss.backward();
        // All encoder parameters still get gradients through the predicted
        // side — what matters is the loss is finite and differentiable.
        assert!(loss.item().is_finite());
        let grads = m.parameters().iter().filter(|p| p.grad().is_some()).count();
        assert!(grads > 0);
    }

    #[test]
    fn without_stop_gradient_more_paths_flow() {
        // Quantitative check: disabling SG changes the gradient received by
        // the CLS token (the target side now contributes).
        let grad_norm = |sg: bool| {
            let mut cfg = TimeDrlConfig::forecasting(32);
            cfg.d_model = 16;
            cfg.d_ff = 32;
            cfg.n_heads = 2;
            cfg.stop_gradient = sg;
            let m = TimeDrl::new(cfg);
            let x = batch(&m, 3, 6);
            let x_patched = m.prepare(&x);
            let mut ctx = Ctx::train(7);
            let v1 = m.encode_patched(&x_patched, &mut ctx);
            let v2 = m.encode_patched(&x_patched, &mut ctx);
            contrastive_loss(&m, &v1, &v2, true).backward();
            m.parameters()[0].grad().map(|g| g.l2_norm()).unwrap_or(0.0)
        };
        let with_sg = grad_norm(true);
        let without_sg = grad_norm(false);
        assert!((with_sg - without_sg).abs() > 1e-7, "SG toggle must change gradients");
    }

    #[test]
    fn identical_views_give_minimal_contrastive_loss() {
        // In eval mode (no dropout) the two views coincide; the loss of
        // aligning c(z) with z itself is bounded by cosine range.
        let m = small_model();
        let x = batch(&m, 4, 8);
        let x_patched = m.prepare(&x);
        let mut ctx = Ctx::eval();
        let v1 = m.encode_patched(&x_patched, &mut ctx);
        let v2 = m.encode_patched(&x_patched, &mut ctx);
        assert_eq!(v1.z.to_array(), v2.z.to_array(), "eval views identical");
        let loss = contrastive_loss(&m, &v1, &v2, false).item();
        assert!((-1.0..=1.0).contains(&loss));
    }

    #[test]
    fn augmentation_changes_the_loss_input() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.augmentation = Augmentation::Jitter;
        let m = TimeDrl::new(cfg);
        let x = batch(&m, 3, 9);
        // Same model weights, same dropout seeds, different augmentation
        // draws -> different losses.
        let (_, b1) = pretext_loss(&m, &x, &mut Ctx::train(1), &mut Prng::new(10));
        let (_, b2) = pretext_loss(&m, &x, &mut Ctx::train(1), &mut Prng::new(11));
        assert!((b1.total - b2.total).abs() > 1e-7);
    }

    #[test]
    fn pooling_choice_feeds_contrastive_task() {
        for pooling in Pooling::ALL {
            let mut cfg = TimeDrlConfig::forecasting(32);
            cfg.d_model = 16;
            cfg.d_ff = 32;
            cfg.n_heads = 2;
            cfg.pooling = pooling;
            let m = TimeDrl::new(cfg);
            // The contrast head expects D-width input; `All` pooling widens
            // the embedding, so it is only wired for probe extraction, not
            // pre-training. Skip it here as the trainer does.
            if pooling == Pooling::All {
                continue;
            }
            let x = batch(&m, 3, 12);
            let (_, b) = pretext_loss(&m, &x, &mut Ctx::train(2), &mut Prng::new(3));
            assert!(b.total.is_finite(), "pooling {:?}", pooling);
        }
    }
}
