//! Self-describing model export: the deployment artifact behind the
//! compiled inference path (`timedrl-serve`).
//!
//! A parameter checkpoint ([`TimeDrl::save`]) deliberately carries *no*
//! configuration — loading one requires a model built from the identical
//! `TimeDrlConfig`. That is the right contract for resuming training, but
//! a serving process should not have to reconstruct a config out of band.
//! The export container bundles an inference-config header with the
//! parameter arrays in one `KIND_MODEL` v2 container:
//!
//! ```text
//! u64 input_len   u64 n_features   u64 patch_len   u64 stride
//! u64 d_model     u64 n_heads      u64 d_ff        u64 n_layers
//! u32 encoder-tag u32 pooling-tag  u32 precision-tag
//! arrays section (u32 count, then each array — stable parameters() order)
//! ```
//!
//! Only the fields that shape the frozen forward pass are encoded;
//! training-only knobs (dropout rate, λ, optimizer settings) are
//! irrelevant in eval mode and reconstructed as inert defaults. The frame
//! inherits every v2 container guarantee: CRC-32 over the payload, bounded
//! incremental reads, typed `InvalidData` errors on any corruption.

use crate::config::{EncoderKind, TimeDrlConfig};
use crate::model::TimeDrl;
use crate::pooling::Pooling;
use std::io;
use std::path::Path;
use timedrl_data::{Augmentation, PatchConfig};
use timedrl_nn::Module;
use timedrl_tensor::{
    decode_arrays, encode_arrays, read_file, write_file_atomic, ByteReader, NdArray, KIND_MODEL,
};

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Inference exactness tier of a deployment artifact (DESIGN.md §15).
///
/// The tier is a property of the *artifact*, not of the host: an export
/// tagged [`Precision::Relaxed`] opts its serving process into the
/// quantized/FMA kernel lowering, and every response derived from it is
/// tagged accordingly on the wire so downstream consumers can never
/// mistake relaxed embeddings for bit-exact ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// The bit-exactness contract of DESIGN.md §10: identical results to
    /// the training tape, thread-count invariant, byte-comparable against
    /// goldens. The default — relaxed serving is strictly opt-in.
    #[default]
    Exact,
    /// Relaxed-exactness serving: linear layers run the int8 per-channel
    /// quantized GEMM and activation products the FMA kernels. Results are
    /// deterministic for a given artifact and host, but are *not* bit-equal
    /// to the exact tier and must never be compared against exact goldens.
    Relaxed,
}

impl Precision {
    /// Stable tag order for container headers and wire responses.
    pub const ALL: [Precision; 2] = [Precision::Exact, Precision::Relaxed];

    /// The stable `u32` tag used in export headers and wire responses.
    pub fn tag(self) -> u32 {
        Self::ALL.iter().position(|p| *p == self).expect("precision in ALL") as u32
    }

    /// Inverse of [`Precision::tag`]; `None` for an unknown tag.
    pub fn from_tag(tag: u32) -> Option<Precision> {
        Self::ALL.get(tag as usize).copied()
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Precision::Exact => "exact",
            Precision::Relaxed => "relaxed",
        })
    }
}

/// A decoded `KIND_MODEL` container: the inference configuration plus the
/// parameter arrays in stable `parameters()` order.
#[derive(Debug)]
pub struct ModelExport {
    /// Inference-shaped configuration (training-only fields are inert
    /// defaults: dropout 0, zero epochs).
    pub config: TimeDrlConfig,
    /// Parameter arrays, in the same order `TimeDrl::parameters` yields.
    pub arrays: Vec<NdArray>,
    /// Exactness tier this artifact opts its serving process into.
    pub precision: Precision,
}

impl ModelExport {
    /// Rebuilds a full tape-path [`TimeDrl`] from this export: constructs
    /// the model from the embedded config and overwrites every parameter.
    ///
    /// # Errors
    /// `InvalidData` when the array count or any shape disagrees with the
    /// architecture the header describes.
    pub fn instantiate(&self) -> io::Result<TimeDrl> {
        let model = TimeDrl::new(self.config.clone());
        let params = model.parameters();
        if params.len() != self.arrays.len() {
            return Err(invalid(format!(
                "export carries {} arrays, architecture has {} parameters",
                self.arrays.len(),
                params.len()
            )));
        }
        for (i, (p, a)) in params.iter().zip(&self.arrays).enumerate() {
            if p.shape() != a.shape() {
                return Err(invalid(format!(
                    "parameter {i}: architecture shape {:?} vs export {:?}",
                    p.shape(),
                    a.shape()
                )));
            }
            p.set_value(a.clone());
        }
        Ok(model)
    }
}

fn encoder_tag(kind: EncoderKind) -> u32 {
    EncoderKind::ALL.iter().position(|k| *k == kind).expect("kind in ALL") as u32
}

fn pooling_tag(p: Pooling) -> u32 {
    Pooling::ALL.iter().position(|q| *q == p).expect("pooling in ALL") as u32
}

/// Encodes the full export payload (kind tag + header + arrays) for a
/// model at the default [`Precision::Exact`] tier. Exposed separately from
/// [`export_model`] so tests can corrupt the bytes in memory.
pub fn encode_model_export(model: &TimeDrl) -> Vec<u8> {
    encode_model_export_with(model, Precision::default())
}

/// Encodes the full export payload with an explicit exactness tier.
pub fn encode_model_export_with(model: &TimeDrl, precision: Precision) -> Vec<u8> {
    let cfg = model.config();
    let mut payload = Vec::new();
    payload.extend_from_slice(&KIND_MODEL.to_le_bytes());
    for dim in [
        cfg.input_len,
        cfg.n_features,
        cfg.patch.patch_len,
        cfg.patch.stride,
        cfg.d_model,
        cfg.n_heads,
        cfg.d_ff,
        cfg.n_layers,
    ] {
        payload.extend_from_slice(&(dim as u64).to_le_bytes());
    }
    payload.extend_from_slice(&encoder_tag(cfg.encoder).to_le_bytes());
    payload.extend_from_slice(&pooling_tag(cfg.pooling).to_le_bytes());
    payload.extend_from_slice(&precision.tag().to_le_bytes());
    let arrays: Vec<NdArray> = model.parameters().iter().map(|p| p.to_array()).collect();
    let refs: Vec<&NdArray> = arrays.iter().collect();
    encode_arrays(&mut payload, &refs);
    payload
}

/// Decodes an export payload body (kind tag already consumed by the
/// container reader). Every header field and array is bounds-checked; a
/// corrupt header yields `InvalidData`, never a panic or over-allocation.
pub fn decode_model_export(payload: &[u8]) -> io::Result<ModelExport> {
    let mut r = ByteReader::new(payload);
    let mut dims = [0usize; 8];
    for d in &mut dims {
        let v = r.u64()?;
        *d = usize::try_from(v).map_err(|_| invalid(format!("header dimension {v} overflows")))?;
    }
    let [input_len, n_features, patch_len, stride, d_model, n_heads, d_ff, n_layers] = dims;
    let enc = r.u32()?;
    let encoder = *EncoderKind::ALL
        .get(enc as usize)
        .ok_or_else(|| invalid(format!("unknown encoder tag {enc}")))?;
    let pool = r.u32()?;
    let pooling = *Pooling::ALL
        .get(pool as usize)
        .ok_or_else(|| invalid(format!("unknown pooling tag {pool}")))?;
    let prec = r.u32()?;
    let precision =
        Precision::from_tag(prec).ok_or_else(|| invalid(format!("unknown precision tag {prec}")))?;
    let config = TimeDrlConfig {
        input_len,
        n_features,
        patch: PatchConfig { patch_len, stride },
        d_model,
        n_heads,
        d_ff,
        n_layers,
        dropout: 0.0,
        encoder,
        lambda: 1.0,
        stop_gradient: true,
        augmentation: Augmentation::None,
        pooling,
        channel_independence: n_features == 1,
        lr: 1e-3,
        weight_decay: 0.0,
        batch_size: 1,
        epochs: 0,
        seed: 0,
        micro_batch: None,
        checkpoint_every: None,
        checkpoint_path: None,
        resume_from: None,
    };
    if patch_len == 0 || stride == 0 {
        return Err(invalid("export header: zero patch length or stride"));
    }
    config.check().map_err(|msg| invalid(format!("export header invalid: {msg}")))?;
    let arrays = decode_arrays(&mut r)?;
    r.finish()?;
    Ok(ModelExport { config, arrays, precision })
}

/// Atomically writes a model's self-describing export container to `path`
/// (temp file + fsync + rename, like every other checkpoint writer) at the
/// default [`Precision::Exact`] tier.
pub fn export_model(path: impl AsRef<Path>, model: &TimeDrl) -> io::Result<()> {
    write_file_atomic(path, &encode_model_export(model))
}

/// Atomically writes an export container with an explicit exactness tier.
/// Tagging an artifact [`Precision::Relaxed`] is the opt-in that lets its
/// serving process lower linear layers onto the quantized/FMA kernels.
pub fn export_model_with(
    path: impl AsRef<Path>,
    model: &TimeDrl,
    precision: Precision,
) -> io::Result<()> {
    write_file_atomic(path, &encode_model_export_with(model, precision))
}

/// Reads and validates a `KIND_MODEL` export container from `path`.
///
/// # Errors
/// `InvalidData` on bad magic/version/kind, checksum mismatch, truncation,
/// an invalid header, or corrupt array metadata.
pub fn read_model_export(path: impl AsRef<Path>) -> io::Result<ModelExport> {
    decode_model_export(&read_file(path, KIND_MODEL)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_nn::Ctx;
    use timedrl_tensor::Prng;

    fn tiny_model() -> TimeDrl {
        let mut cfg = TimeDrlConfig::forecasting(16);
        cfg.patch = PatchConfig::non_overlapping(4);
        cfg.d_model = 8;
        cfg.n_heads = 2;
        cfg.d_ff = 8;
        cfg.n_layers = 1;
        cfg.seed = 11;
        TimeDrl::new(cfg)
    }

    #[test]
    fn export_roundtrips_config_and_parameters() {
        let model = tiny_model();
        let payload = encode_model_export(&model);
        let export = decode_model_export(&payload[4..]).unwrap();
        assert_eq!(export.config.input_len, 16);
        assert_eq!(export.config.d_model, 8);
        assert_eq!(export.config.encoder, EncoderKind::TransformerEncoder);
        assert_eq!(export.config.pooling, Pooling::Cls);
        assert_eq!(export.precision, Precision::Exact);
        let params = model.parameters();
        assert_eq!(export.arrays.len(), params.len());
        for (p, a) in params.iter().zip(&export.arrays) {
            assert_eq!(p.to_array(), *a);
        }
    }

    #[test]
    fn instantiated_model_forward_matches_original() {
        let model = tiny_model();
        let dir = std::env::temp_dir().join("timedrl_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model_export.tdrl");
        export_model(&path, &model).unwrap();
        let rebuilt = read_model_export(&path).unwrap().instantiate().unwrap();
        let x = Prng::new(3).randn(&[2, 16, 1]);
        let a = model.encode(&x, &mut Ctx::eval());
        let b = rebuilt.encode(&x, &mut Ctx::eval());
        assert_eq!(a.z.to_array(), b.z.to_array());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_kind_container_is_rejected() {
        let model = tiny_model();
        let dir = std::env::temp_dir().join("timedrl_export_kind_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("params.tdrl");
        model.save(&ckpt).unwrap(); // KIND_ARRAYS, not KIND_MODEL
        let err = read_model_export(&ckpt).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_header_tags_are_typed_errors() {
        let model = tiny_model();
        let payload = encode_model_export(&model);
        // Encoder tag sits at offset 4 (kind) + 64 (8 dims).
        let mut bad = payload[4..].to_vec();
        bad[64] = 0xFF;
        assert!(decode_model_export(&bad).unwrap_err().to_string().contains("encoder tag"));
        let mut bad = payload[4..].to_vec();
        bad[68] = 0xFF;
        assert!(decode_model_export(&bad).unwrap_err().to_string().contains("pooling tag"));
        // Precision tag sits after the pooling tag.
        let mut bad = payload[4..].to_vec();
        bad[72] = 0xFF;
        assert!(decode_model_export(&bad).unwrap_err().to_string().contains("precision tag"));
    }

    #[test]
    fn relaxed_precision_round_trips() {
        let model = tiny_model();
        let payload = encode_model_export_with(&model, Precision::Relaxed);
        let export = decode_model_export(&payload[4..]).unwrap();
        assert_eq!(export.precision, Precision::Relaxed);
        assert_eq!(Precision::from_tag(Precision::Relaxed.tag()), Some(Precision::Relaxed));
        assert_eq!(Precision::from_tag(99), None);
        assert_eq!(Precision::Relaxed.to_string(), "relaxed");
    }

    #[test]
    fn truncated_payload_never_panics() {
        let model = tiny_model();
        let payload = encode_model_export(&model);
        let body = &payload[4..];
        for len in 0..body.len().min(100) {
            assert!(decode_model_export(&body[..len]).is_err(), "truncation at {len} accepted");
        }
    }
}
