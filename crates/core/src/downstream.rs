//! Downstream evaluation pipelines (Fig. 3b): linear evaluation on frozen
//! embeddings (Tables III–V) and full fine-tuning for semi-supervised
//! scenarios (Fig. 5).

use crate::config::TimeDrlConfig;
use crate::model::{channel_independent, TimeDrl};
use crate::trainer::{gather_rows, pretrain, PretrainReport};
use timedrl_data::{chrono_split, sliding_windows, ClassifyDataset, ForecastDataset, Standardizer};
use timedrl_data::BatchIndices;
use timedrl_eval::{classification_report, mae, mse, ClassificationReport, LogisticConfig, LogisticProbe, RidgeProbe};
use timedrl_nn::{AdamW, Ctx, Linear, Module, Optimizer};
use timedrl_tensor::{NdArray, Prng, Var};

/// Forecasting-task geometry.
#[derive(Debug, Clone, Copy)]
pub struct ForecastTask {
    /// Lookback window length `L` fed to the encoder.
    pub lookback: usize,
    /// Prediction horizon `T` (the paper's table rows).
    pub horizon: usize,
    /// Stride between extracted windows (1 = every window; larger strides
    /// subsample for speed without changing the task).
    pub stride: usize,
}

/// Forecasting metrics (standardized scale, as the benchmarks report).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastEvalResult {
    /// Mean squared error (Eq. 20).
    pub mse: f32,
    /// Mean absolute error (Eq. 21).
    pub mae: f32,
}

/// Windowed, standardized, channel-folded forecasting data ready for an
/// encoder with `n_features = 1`.
///
/// Besides the raw (globally standardized) windows and targets, this
/// carries each window's own temporal mean/std. TimeDRL's pipeline
/// instance-normalizes encoder inputs (Eq. 1, following RevIN), so its
/// readout predicts the *normalized* horizon and predictions are
/// de-normalized with the window statistics before scoring — without this,
/// level information (critical on random-walk data like Exchange) would be
/// unrecoverable from the embeddings.
pub struct ForecastData {
    /// Train inputs `[M, L, 1]` (M = windows × channels).
    pub train_inputs: NdArray,
    /// Train targets `[M, H]`.
    pub train_targets: NdArray,
    /// Test inputs `[M', L, 1]`.
    pub test_inputs: NdArray,
    /// Test targets `[M', H]`.
    pub test_targets: NdArray,
    /// Per-window temporal mean of train inputs, `[M, 1]`.
    pub train_mean: NdArray,
    /// Per-window temporal std of train inputs, `[M, 1]`.
    pub train_std: NdArray,
    /// Per-window temporal mean of test inputs, `[M', 1]`.
    pub test_mean: NdArray,
    /// Per-window temporal std of test inputs, `[M', 1]`.
    pub test_std: NdArray,
}

impl ForecastData {
    /// Train targets expressed in each window's own normalized scale
    /// (RevIN target space).
    pub fn train_targets_normalized(&self) -> NdArray {
        self.train_targets.sub(&self.train_mean).div(&self.train_std)
    }

    /// Maps predictions from RevIN target space back to the standardized
    /// scale of `test_targets`.
    pub fn denormalize_test(&self, pred: &NdArray) -> NdArray {
        pred.mul(&self.test_std).add(&self.test_mean)
    }
}

/// Per-window temporal mean and std (`[M, 1]` each) of `[M, L, 1]` inputs.
fn window_stats(inputs: &NdArray) -> (NdArray, NdArray) {
    let m = inputs.shape()[0];
    let mean = inputs.mean_axis(1, false).reshape(&[m, 1]).expect("mean shape");
    let std = inputs
        .var_axis(1, false)
        .add_scalar(1e-5)
        .sqrt()
        .reshape(&[m, 1])
        .expect("std shape");
    (mean, std)
}

/// Builds channel-independent forecasting data from a raw dataset: 60/20/20
/// chronological split, train-fitted standardization, sliding windows, and
/// the `[N, L, C] -> [N·C, L, 1]` channel fold.
pub fn prepare_forecast_data(dataset: &ForecastDataset, task: &ForecastTask) -> ForecastData {
    let split = chrono_split(dataset);
    let scaler = Standardizer::fit(&split.train);
    let train = scaler.transform(&split.train);
    let test = scaler.transform(&split.test);

    let train_w = sliding_windows(&train, task.lookback, task.horizon, task.stride);
    let test_w = sliding_windows(&test, task.lookback, task.horizon, task.stride);
    assert!(!train_w.is_empty() && !test_w.is_empty(), "series too short for task geometry");

    let train_inputs = channel_independent(&train_w.inputs);
    let test_inputs = channel_independent(&test_w.inputs);
    let (train_mean, train_std) = window_stats(&train_inputs);
    let (test_mean, test_std) = window_stats(&test_inputs);
    ForecastData {
        train_targets: fold_targets(&train_w.targets),
        test_targets: fold_targets(&test_w.targets),
        train_inputs,
        test_inputs,
        train_mean,
        train_std,
        test_mean,
        test_std,
    }
}

/// Folds `[N, H, C]` horizon targets to per-channel rows `[N·C, H]`,
/// matching [`channel_independent`]'s sample order.
fn fold_targets(targets: &NdArray) -> NdArray {
    let (n, h, c) = (targets.shape()[0], targets.shape()[1], targets.shape()[2]);
    targets.permute(&[0, 2, 1]).reshape(&[n * c, h]).expect("target fold")
}

/// Full linear-evaluation pipeline for forecasting (Section V-A): pre-train
/// on train windows, freeze, fit a ridge readout on flattened
/// timestamp-level embeddings, report test MSE/MAE.
///
/// Returns the trained model alongside the metrics so ablation harnesses
/// can reuse the encoder.
pub fn forecast_linear_eval(
    cfg: &TimeDrlConfig,
    data: &ForecastData,
    ridge_lambda: f32,
) -> (TimeDrl, ForecastEvalResult, PretrainReport) {
    assert_eq!(cfg.input_len, data.train_inputs.shape()[1], "config/task lookback mismatch");
    assert_eq!(cfg.n_features, 1, "forecasting pipeline is channel-independent");
    let model = TimeDrl::new(cfg.clone());
    let report = pretrain(&model, &data.train_inputs).expect("pre-training failed");
    let result = probe_forecast(&model, data, ridge_lambda);
    (model, result, report)
}

/// Fits and scores the ridge readout for an already-trained encoder.
///
/// Following RevIN (Eq. 1's instance normalization), the probe learns in
/// each window's normalized scale; predictions are de-normalized with the
/// test windows' own statistics before scoring.
pub fn probe_forecast(model: &TimeDrl, data: &ForecastData, ridge_lambda: f32) -> ForecastEvalResult {
    let train_emb = model.embed_timestamps_flat(&data.train_inputs);
    let test_emb = model.embed_timestamps_flat(&data.test_inputs);
    let probe = RidgeProbe::fit(&train_emb, &data.train_targets_normalized(), ridge_lambda);
    let pred = data.denormalize_test(&probe.predict(&test_emb));
    ForecastEvalResult { mse: mse(&pred, &data.test_targets), mae: mae(&pred, &data.test_targets) }
}

/// Classification linear evaluation (Section V-B): pre-train on the train
/// split, freeze, fit a logistic readout on instance-level embeddings,
/// report on the test split.
pub fn classification_linear_eval(
    cfg: &TimeDrlConfig,
    train: &ClassifyDataset,
    test: &ClassifyDataset,
    probe_cfg: &LogisticConfig,
) -> (TimeDrl, ClassificationReport) {
    let model = TimeDrl::new(cfg.clone());
    pretrain(&model, &train.to_batch()).expect("pre-training failed");
    let report = probe_classification(&model, train, test, probe_cfg);
    (model, report)
}

/// Fits and scores the logistic readout for an already-trained encoder.
pub fn probe_classification(
    model: &TimeDrl,
    train: &ClassifyDataset,
    test: &ClassifyDataset,
    probe_cfg: &LogisticConfig,
) -> ClassificationReport {
    let train_emb = model.embed_instances(&train.to_batch());
    let test_emb = model.embed_instances(&test.to_batch());
    let probe = LogisticProbe::fit(&train_emb, &train.labels, train.n_classes, probe_cfg, model.config().seed);
    let pred = probe.predict(&test_emb);
    classification_report(&pred, &test.labels, test.n_classes)
}

// ---------------------------------------------------------------------
// Fine-tuning (Fig. 5 semi-supervised protocol)
// ---------------------------------------------------------------------

/// Hyperparameters for supervised fine-tuning.
///
/// Fine-tuning follows the LP-FT recipe: the head is first *initialized
/// from the linear-probe solution on the frozen encoder* (closed-form
/// ridge for forecasting, a trained logistic probe for classification),
/// then encoder + head train jointly. Starting joint training from a
/// random head lets its early, large gradients destroy pre-trained
/// encoder features — precisely the failure mode that made pre-training
/// look harmful in early versions of this harness.
#[derive(Debug, Clone, Copy)]
pub struct FinetuneConfig {
    /// Learning rate for joint encoder + head training.
    pub lr: f32,
    /// Joint fine-tuning epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        Self { lr: 1e-3, epochs: 10, batch_size: 32 }
    }
}

/// Fine-tunes a (pre-trained or fresh) model plus a linear forecasting head
/// end-to-end on labelled windows, then scores on test windows.
///
/// `label_fraction` subsamples the labelled training windows, emulating the
/// limited-label regime of Fig. 5(a–c).
pub fn finetune_forecast(
    model: &TimeDrl,
    data: &ForecastData,
    ft: &FinetuneConfig,
    label_fraction: f32,
    seed: u64,
) -> ForecastEvalResult {
    let cfg = model.config();
    let t_p = cfg.num_patches();
    let d = cfg.d_model;
    let horizon = data.train_targets.shape()[1];
    let mut rng = Prng::new(seed);
    let head = Linear::new(t_p * d, horizon, &mut rng);

    let n_total = data.train_inputs.shape()[0];
    let kept = select_fraction(n_total, label_fraction, &mut rng);

    // RevIN target space: the encoder sees instance-normalized windows, so
    // the head learns normalized horizons (de-normalized at evaluation).
    let norm_targets = data.train_targets_normalized();

    // LP: initialize the head from the closed-form ridge solution on the
    // frozen encoder's embeddings of the labelled subset.
    {
        let inputs = gather_rows(&data.train_inputs, &kept);
        let targets = gather_targets(&norm_targets, &kept);
        let emb = model.embed_timestamps_flat(&inputs);
        let probe = RidgeProbe::fit(&emb, &targets, 1.0);
        head.load(probe.weight().clone(), Some(probe.bias().clone()));
    }

    // FT: joint encoder + head training.
    let mut joint = model.parameters();
    joint.extend(head.parameters());
    let mut opt = AdamW::new(joint, ft.lr, 1e-4);
    let mut ctx = Ctx::train(seed ^ 0xf17e);
    for _ in 0..ft.epochs {
        for idx in BatchIndices::new(kept.len(), ft.batch_size, Some(&mut rng))
            .expect("finetune batch_size is positive")
        {
            let rows: Vec<usize> = idx.iter().map(|&i| kept[i]).collect();
            let inputs = gather_rows(&data.train_inputs, &rows);
            let targets = gather_targets(&norm_targets, &rows);
            opt.zero_grad();
            let enc = model.encode(&inputs, &mut ctx);
            let emb = enc.timestamps().reshape(&[rows.len(), t_p * d]);
            head.forward(&emb).mse_loss(&targets).backward();
            opt.step();
        }
    }

    // Score with the fine-tuned encoder in eval mode.
    let mut eval_ctx = Ctx::eval();
    let n_test = data.test_inputs.shape()[0];
    let mut preds: Vec<NdArray> = Vec::new();
    let mut start = 0;
    while start < n_test {
        let len = 128.min(n_test - start);
        let chunk = data.test_inputs.slice(0, start, len).expect("test chunk");
        let enc = model.encode(&chunk, &mut eval_ctx);
        let emb = enc.timestamps().reshape(&[len, t_p * d]);
        preds.push(head.forward(&emb).to_array());
        start += len;
    }
    let refs: Vec<&NdArray> = preds.iter().collect();
    let pred = data.denormalize_test(&NdArray::concat(&refs, 0));
    ForecastEvalResult { mse: mse(&pred, &data.test_targets), mae: mae(&pred, &data.test_targets) }
}

/// Fine-tunes a (pre-trained or fresh) model plus a linear classification
/// head end-to-end, then scores on the test set (Fig. 5(d–f)).
pub fn finetune_classification(
    model: &TimeDrl,
    train: &ClassifyDataset,
    test: &ClassifyDataset,
    ft: &FinetuneConfig,
    label_fraction: f32,
    seed: u64,
) -> ClassificationReport {
    let cfg = model.config();
    let mut rng = Prng::new(seed);

    let labelled =
        train.subsample_labels(label_fraction, &mut rng).expect("label fraction in [0, 1]");
    let batch_tensor = labelled.to_batch();

    // LP: the head *is* the logistic-probe solution on the frozen
    // encoder's embeddings of the labelled subset.
    let head = {
        let emb = model.embed_instances(&batch_tensor);
        LogisticProbe::fit(&emb, &labelled.labels, train.n_classes, &LogisticConfig::default(), seed)
            .into_linear()
    };

    // FT: joint encoder + head training.
    let mut joint = model.parameters();
    joint.extend(head.parameters());
    let mut opt = AdamW::new(joint, ft.lr, 1e-4);
    let mut ctx = Ctx::train(seed ^ 0xc1a5);
    for _ in 0..ft.epochs {
        for idx in BatchIndices::new(labelled.len(), ft.batch_size, Some(&mut rng))
            .expect("finetune batch_size is positive")
        {
            let inputs = gather_rows(&batch_tensor, &idx);
            let labels: Vec<usize> = idx.iter().map(|&i| labelled.labels[i]).collect();
            opt.zero_grad();
            let enc = model.encode(&inputs, &mut ctx);
            let z_i = enc.instance(cfg.pooling);
            head.forward(&z_i).cross_entropy(&labels).backward();
            opt.step();
        }
    }

    let test_emb = model.embed_instances(&test.to_batch());
    let pred = head.forward(&Var::constant(test_emb)).to_array().argmax_lastdim();
    classification_report(&pred, &test.labels, test.n_classes)
}

/// Gathers target rows `[M, H]` by index.
fn gather_targets(targets: &NdArray, rows: &[usize]) -> NdArray {
    let h = targets.shape()[1];
    let mut data = Vec::with_capacity(rows.len() * h);
    for &r in rows {
        data.extend_from_slice(&targets.data()[r * h..(r + 1) * h]);
    }
    NdArray::from_vec(&[rows.len(), h], data).expect("gathered targets")
}

/// Picks a random `fraction` of `0..n` (at least one element).
fn select_fraction(n: usize, fraction: f32, rng: &mut Prng) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0,1]");
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let keep = (((n as f32) * fraction).round() as usize).clamp(1, n);
    idx.truncate(keep);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_data::synth::classify::pendigits;
    use timedrl_data::synth::forecast::etth1;

    fn quick_cfg(lookback: usize) -> TimeDrlConfig {
        let mut cfg = TimeDrlConfig::forecasting(lookback);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 2;
        cfg
    }

    fn quick_task() -> ForecastTask {
        ForecastTask { lookback: 32, horizon: 8, stride: 16 }
    }

    // ------------------------------------------------------------------
    // Direct unit tests of the data plumbing (no pre-training).
    // ------------------------------------------------------------------

    #[test]
    fn window_stats_hand_computed() {
        // Window 0: [1, 3] -> mean 2, var 1; window 1: [5, 5] -> mean 5, var 0.
        let inputs = NdArray::from_vec(&[2, 2, 1], vec![1.0, 3.0, 5.0, 5.0]).unwrap();
        let (mean, std) = window_stats(&inputs);
        assert_eq!(mean.shape(), &[2, 1]);
        assert_eq!(mean.at(&[0, 0]), 2.0);
        assert_eq!(mean.at(&[1, 0]), 5.0);
        assert!((std.at(&[0, 0]) - (1.0f32 + 1e-5).sqrt()).abs() < 1e-7);
        assert!((std.at(&[1, 0]) - (1e-5f32).sqrt()).abs() < 1e-7);
    }

    #[test]
    fn window_stats_one_window_edge() {
        let inputs = NdArray::from_vec(&[1, 3, 1], vec![2.0, 4.0, 6.0]).unwrap();
        let (mean, std) = window_stats(&inputs);
        assert_eq!(mean.shape(), &[1, 1]);
        assert_eq!(mean.at(&[0, 0]), 4.0);
        assert!(std.at(&[0, 0]) > 0.0);
    }

    #[test]
    fn revin_target_space_roundtrip() {
        // Hand-built ForecastData with known window statistics.
        let targets = NdArray::from_vec(&[2, 2], vec![3.0, 5.0, 10.0, 20.0]).unwrap();
        let mean = NdArray::from_vec(&[2, 1], vec![1.0, 10.0]).unwrap();
        let std = NdArray::from_vec(&[2, 1], vec![2.0, 5.0]).unwrap();
        let data = ForecastData {
            train_inputs: NdArray::zeros(&[2, 4, 1]),
            train_targets: targets.clone(),
            test_inputs: NdArray::zeros(&[2, 4, 1]),
            test_targets: targets.clone(),
            train_mean: mean.clone(),
            train_std: std.clone(),
            test_mean: mean,
            test_std: std,
        };
        let norm = data.train_targets_normalized();
        // Window 0: (3-1)/2 = 1, (5-1)/2 = 2; window 1: 0, 2.
        assert_eq!(norm.at(&[0, 0]), 1.0);
        assert_eq!(norm.at(&[0, 1]), 2.0);
        assert_eq!(norm.at(&[1, 0]), 0.0);
        assert_eq!(norm.at(&[1, 1]), 2.0);
        // Denormalizing the normalized targets recovers the originals
        // (train and test stats coincide in this fixture).
        assert!(data.denormalize_test(&norm).max_abs_diff(&targets) < 1e-6);
    }

    #[test]
    fn gather_targets_picks_rows_in_order() {
        let t = NdArray::from_vec(&[3, 2], vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0]).unwrap();
        let g = gather_targets(&t, &[2, 0]);
        assert_eq!(g.shape(), &[2, 2]);
        assert_eq!(g.data(), &[20.0, 21.0, 0.0, 1.0]);
        // Empty gather: a well-formed [0, H] tensor, not a panic.
        assert_eq!(gather_targets(&t, &[]).shape(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "series too short")]
    fn too_short_series_is_reported() {
        let ds = etth1(60, 9);
        // Lookback + horizon exceed the 60/20/20 split's train length.
        prepare_forecast_data(&ds, &ForecastTask { lookback: 48, horizon: 24, stride: 1 });
    }

    #[test]
    fn forecast_pipeline_end_to_end() {
        let ds = etth1(1200, 0);
        let data = prepare_forecast_data(&ds, &quick_task());
        // 7 channels folded into the sample axis.
        assert_eq!(data.train_inputs.shape()[2], 1);
        assert_eq!(data.train_inputs.shape()[0] % 7, 0);
        let (_, result, report) = forecast_linear_eval(&quick_cfg(32), &data, 1.0);
        assert!(result.mse.is_finite() && result.mse > 0.0);
        assert!(result.mae.is_finite() && result.mae > 0.0);
        assert!(report.final_loss().unwrap().is_finite());
    }

    #[test]
    fn probe_beats_mean_predictor_on_structured_data() {
        // Standardized targets have variance ~1, so MSE of the mean
        // predictor is ~1. The learned probe must do better on ETT's
        // strongly periodic series.
        let ds = etth1(2000, 1);
        let data = prepare_forecast_data(&ds, &quick_task());
        let (_, result, _) = forecast_linear_eval(&quick_cfg(32), &data, 1.0);
        assert!(result.mse < 1.0, "probe MSE {} should beat variance baseline", result.mse);
    }

    #[test]
    fn fold_targets_matches_channel_fold_order() {
        // targets[n, h, c] = 100n + 10h + c
        let t = NdArray::from_fn(&[2, 3, 2], |flat| {
            let n = flat / 6;
            let h = (flat % 6) / 2;
            let c = flat % 2;
            (100 * n + 10 * h + c) as f32
        });
        let f = fold_targets(&t);
        assert_eq!(f.shape(), &[4, 3]);
        // Row 0: window 0 channel 0 horizons -> [0, 10, 20].
        assert_eq!(f.at(&[0, 2]), 20.0);
        // Row 1: window 0 channel 1 -> [1, 11, 21].
        assert_eq!(f.at(&[1, 0]), 1.0);
        // Row 2: window 1 channel 0 -> [100, ...].
        assert_eq!(f.at(&[2, 0]), 100.0);
    }

    #[test]
    fn classification_pipeline_end_to_end() {
        let ds = pendigits(120, 2);
        let mut rng = Prng::new(3);
        let (train, test) =
            ds.train_test_split(0.6, &mut rng).expect("0.6 is a valid fraction");
        let mut cfg = TimeDrlConfig::classification(8, 2);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 3;
        let probe_cfg = LogisticConfig { epochs: 120, ..Default::default() };
        let (_, report) = classification_linear_eval(&cfg, &train, &test, &probe_cfg);
        // 10 classes, chance = 10%; structured prototypes should be far
        // above chance even with a tiny model.
        assert!(report.accuracy > 0.3, "accuracy {}", report.accuracy);
        assert!(report.kappa > 0.2, "kappa {}", report.kappa);
    }

    #[test]
    fn finetune_improves_or_matches_probe() {
        let ds = etth1(1200, 4);
        let data = prepare_forecast_data(&ds, &quick_task());
        let (model, probe_result, _) = forecast_linear_eval(&quick_cfg(32), &data, 1.0);
        let ft = FinetuneConfig { epochs: 3, ..Default::default() };
        let ft_result = finetune_forecast(&model, &data, &ft, 1.0, 9);
        assert!(ft_result.mse.is_finite());
        // Fine-tuning with full labels should be in the same regime or
        // better — allow slack for the tiny training budget.
        assert!(ft_result.mse < probe_result.mse * 2.0);
    }

    #[test]
    fn label_fraction_subsampling() {
        let mut rng = Prng::new(5);
        let sel = select_fraction(100, 0.25, &mut rng);
        assert_eq!(sel.len(), 25);
        let all = select_fraction(10, 1.0, &mut rng);
        assert_eq!(all.len(), 10);
        let one = select_fraction(10, 0.0, &mut rng);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn finetune_classification_runs() {
        let ds = pendigits(80, 6);
        let mut rng = Prng::new(7);
        let (train, test) =
            ds.train_test_split(0.6, &mut rng).expect("0.6 is a valid fraction");
        let mut cfg = TimeDrlConfig::classification(8, 2);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 1;
        let model = TimeDrl::new(cfg);
        let ft = FinetuneConfig { epochs: 4, ..Default::default() };
        let report = finetune_classification(&model, &train, &test, &ft, 0.5, 11);
        assert!(report.accuracy > 0.1, "should be at least near chance");
    }
}
