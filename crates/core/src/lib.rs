//! # timedrl
//!
//! A from-scratch Rust reproduction of **TimeDRL** (Chang et al., ICDE
//! 2024): *Disentangled Representation Learning for Multivariate
//! Time-Series*.
//!
//! TimeDRL learns **dual-level embeddings** from unlabeled time-series:
//!
//! * **timestamp-level** `z_t` — one embedding per patch token, optimized
//!   by a *timestamp-predictive* task (reconstruct the unmasked patched
//!   input; Eqs. 6–9);
//! * **instance-level** `z_i` — a dedicated `[CLS]` token, optimized by a
//!   negative-free *instance-contrastive* task whose two views come from
//!   encoder dropout rather than data augmentation (Eqs. 10–18).
//!
//! The joint objective is `L = L_P + λ·L_C` (Eq. 19).
//!
//! ```no_run
//! use timedrl::{TimeDrl, TimeDrlConfig, pretrain};
//! use timedrl_tensor::Prng;
//!
//! let cfg = TimeDrlConfig::forecasting(64);
//! let model = TimeDrl::new(cfg);
//! let windows = Prng::new(0).randn(&[128, 64, 1]); // your unlabeled data
//! let report = pretrain(&model, &windows).expect("training failed");
//! if let Some(loss) = report.final_loss() {
//!     println!("final pretext loss: {loss}");
//! }
//! let embeddings = model.embed_instances(&windows); // [128, D]
//! # let _ = embeddings;
//! ```

#![warn(missing_docs)]

pub mod anomaly;
pub mod checkpoint;
pub mod config;
pub mod downstream;
pub mod encoder;
pub mod error;
pub mod export;
pub mod model;
pub mod pooling;
pub mod pretext;
pub mod shard;
pub mod trainer;

pub use anomaly::{
    anomaly_scores, patch_errors, quantile_from_sorted, try_anomaly_scores, window_score,
    AnomalyDetector, AnomalyError, AnomalyScores,
};
pub use checkpoint::{load_training_state, save_training_state, TrainingState};
pub use config::{EncoderKind, TimeDrlConfig};
pub use error::TrainError;
pub use downstream::{
    classification_linear_eval, finetune_classification, finetune_forecast, forecast_linear_eval,
    prepare_forecast_data, probe_classification, probe_forecast, FinetuneConfig, ForecastData,
    ForecastEvalResult, ForecastTask,
};
pub use encoder::Encoder;
pub use export::{
    decode_model_export, encode_model_export, encode_model_export_with, export_model,
    export_model_with, read_model_export, ModelExport, Precision,
};
pub use model::{channel_independent, ContrastHead, Encoded, TimeDrl};
pub use pooling::Pooling;
pub use pretext::{contrastive_loss, predictive_loss, pretext_loss, PretextBreakdown};
pub use shard::{run_shard_worker, run_shard_worker_with, ShardTrainPlan};
pub use trainer::{gather_rows, pretrain, pretrain_with_validation, PretrainReport};
