//! The TimeDRL model (Section IV): patched tokens + `[CLS]`, a linear
//! token encoding, learnable positional encoding, the backbone encoder,
//! and the two pretext heads.

use crate::config::TimeDrlConfig;
use crate::encoder::Encoder;
use crate::pooling::Pooling;
use timedrl_data::{instance_normalize, patch_batch};
use timedrl_nn::{BatchNorm1d, Ctx, Linear, Module};
use timedrl_tensor::{NdArray, Prng, Var};

/// The instance-contrastive head `c_θ`: "a two-layer bottleneck MLP with
/// BatchNorm and ReLU in the middle" (Section IV-C).
pub struct ContrastHead {
    l1: Linear,
    bn: BatchNorm1d,
    l2: Linear,
}

impl ContrastHead {
    /// Builds the bottleneck head: `D -> D/4 -> D`.
    pub fn new(d: usize, rng: &mut Prng) -> Self {
        let hidden = (d / 4).max(2);
        Self {
            l1: Linear::new(d, hidden, rng),
            bn: BatchNorm1d::new(hidden),
            l2: Linear::new(hidden, d, rng),
        }
    }

    /// Maps `[B, D] -> [B, D]`.
    pub fn forward(&self, x: &Var, training: bool) -> Var {
        self.l2.forward(&self.bn.forward(&self.l1.forward(x), training).relu())
    }
}

impl Module for ContrastHead {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.l1.parameters();
        ps.extend(self.bn.parameters());
        ps.extend(self.l2.parameters());
        ps
    }
}

/// The full encoder output of one forward pass: the `[CLS]`-led token
/// sequence plus the patched input it must reconstruct.
pub struct Encoded {
    /// Full token embeddings `z ∈ [B, 1+T_p, D]` (Eq. 3).
    pub z: Var,
    /// The patched input `x_patched ∈ [B, T_p, C·P]` — the reconstruction
    /// target of the timestamp-predictive task (Eq. 6).
    pub x_patched: NdArray,
}

impl Encoded {
    /// Instance-level embedding `z_i = z[0, :]` (Eq. 4) under the given
    /// pooling strategy.
    pub fn instance(&self, pooling: Pooling) -> Var {
        pooling.extract(&self.z)
    }

    /// Timestamp-level embeddings `z_t = z[1 : T_p+1, :]` (Eq. 5),
    /// shape `[B, T_p, D]`.
    pub fn timestamps(&self) -> Var {
        let tokens = self.z.shape()[1];
        self.z.slice(1, 1, tokens - 1)
    }
}

/// The TimeDRL model: `f_θ` with its embedding layers and both pretext
/// heads.
pub struct TimeDrl {
    cfg: TimeDrlConfig,
    /// Linear token encoding `W_token ∈ [C·P, D]` (stored input-major).
    token_proj: Linear,
    /// The learnable `[CLS]` token `∈ [C·P]` (Eq. 2).
    cls: Var,
    /// Learnable positional encoding `PE ∈ [1+T_p, D]` (Eq. 3).
    pos: Var,
    /// Backbone `f_θ`.
    encoder: Encoder,
    /// Timestamp-predictive head `p_θ`: a linear layer without activation
    /// (Section IV-B).
    pred_head: Linear,
    /// Instance-contrastive head `c_θ`.
    contrast_head: ContrastHead,
}

impl TimeDrl {
    /// Builds a model from its configuration.
    pub fn new(cfg: TimeDrlConfig) -> Self {
        cfg.validate();
        let mut rng = Prng::new(cfg.seed);
        let token_width = cfg.token_width();
        let d = cfg.d_model;
        let seq = 1 + cfg.num_patches();
        Self {
            token_proj: Linear::new(token_width, d, &mut rng),
            cls: Var::parameter(rng.randn(&[token_width]).scale(0.02)),
            pos: Var::parameter(rng.randn(&[seq, d]).scale(0.02)),
            encoder: Encoder::new(&cfg, &mut rng),
            pred_head: Linear::new(d, token_width, &mut rng),
            contrast_head: ContrastHead::new(d, &mut rng),
            cfg,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &TimeDrlConfig {
        &self.cfg
    }

    /// Applies instance normalization and patching (Eq. 1) to a raw
    /// `[B, T, C]` batch, yielding `x_patched ∈ [B, T_p, C·P]`.
    pub fn prepare(&self, x: &NdArray) -> NdArray {
        assert_eq!(x.rank(), 3, "prepare expects [B, T, C]");
        assert_eq!(x.shape()[1], self.cfg.input_len, "window length mismatch");
        assert_eq!(x.shape()[2], self.cfg.n_features, "feature count mismatch");
        let normalized = instance_normalize(x).expect("rank validated above");
        patch_batch(&normalized, &self.cfg.patch)
    }

    /// One encoder pass over an already-patched batch (Eqs. 2–3): prepend
    /// `[CLS]`, token-encode, add positions, run the backbone.
    pub fn encode_patched(&self, x_patched: &NdArray, ctx: &mut Ctx) -> Encoded {
        let (b, t_p, w) = (x_patched.shape()[0], x_patched.shape()[1], x_patched.shape()[2]);
        assert_eq!(t_p, self.cfg.num_patches(), "patch count mismatch");
        assert_eq!(w, self.cfg.token_width(), "token width mismatch");
        let tokens = Var::constant(x_patched.clone());
        let cls = self.cls.reshape(&[1, 1, w]).broadcast_to(&[b, 1, w]);
        let with_cls = Var::concat(&[cls, tokens], 1); // [B, 1+Tp, C·P]
        let embedded = self.token_proj.forward(&with_cls).add(&self.pos);
        let z = self.encoder.forward(&embedded, ctx);
        Encoded { z, x_patched: x_patched.clone() }
    }

    /// Full pass from a raw `[B, T, C]` batch.
    pub fn encode(&self, x: &NdArray, ctx: &mut Ctx) -> Encoded {
        self.encode_patched(&self.prepare(x), ctx)
    }

    /// The timestamp-predictive head's reconstruction of the patched input
    /// from `z_t` (Eq. 6): `[B, T_p, D] -> [B, T_p, C·P]`.
    pub fn predict_patches(&self, z_t: &Var) -> Var {
        self.pred_head.forward(z_t)
    }

    /// The instance-contrastive head output `ẑ_i = c_θ(z_i)` (Eqs. 14–15).
    pub fn project_instance(&self, z_i: &Var, training: bool) -> Var {
        self.contrast_head.forward(z_i, training)
    }

    /// Frozen-encoder embedding of instances for downstream probes:
    /// `[N, T, C] -> [N, pooled]` in eval mode, processed in chunks.
    pub fn embed_instances(&self, x: &NdArray) -> NdArray {
        self.embed_with(x, |enc| enc.instance(self.cfg.pooling))
    }

    /// Frozen-encoder timestamp embeddings flattened per sample:
    /// `[N, T, C] -> [N, T_p · D]`.
    pub fn embed_timestamps_flat(&self, x: &NdArray) -> NdArray {
        let t_p = self.cfg.num_patches();
        let d = self.cfg.d_model;
        self.embed_with(x, |enc| {
            let b = enc.z.shape()[0];
            enc.timestamps().reshape(&[b, t_p * d])
        })
    }

    /// Saves all parameters to a checkpoint file (stable `parameters()`
    /// order; see `timedrl_tensor::serialize` for the format).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        timedrl_tensor::save_parameters(path, &self.parameters())
    }

    /// Restores parameters from a checkpoint produced by [`TimeDrl::save`]
    /// on a model with the identical configuration.
    pub fn load(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        timedrl_tensor::load_parameters(path, &self.parameters())
    }

    /// Writes the self-describing deployment artifact: configuration header
    /// plus parameters in one `KIND_MODEL` container, consumable standalone
    /// by the compiled inference path (see `crate::export`). Tagged
    /// [`crate::export::Precision::Exact`]; use [`TimeDrl::export_with`] to
    /// opt an artifact into relaxed serving.
    pub fn export(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::export::export_model(path, self)
    }

    /// Like [`TimeDrl::export`] with an explicit exactness tier baked into
    /// the artifact header.
    pub fn export_with(
        &self,
        path: impl AsRef<std::path::Path>,
        precision: crate::export::Precision,
    ) -> std::io::Result<()> {
        crate::export::export_model_with(path, self, precision)
    }

    fn embed_with(&self, x: &NdArray, extract: impl Fn(&Encoded) -> Var) -> NdArray {
        assert_eq!(x.rank(), 3, "embed expects [N, T, C]");
        let n = x.shape()[0];
        let chunk = 128;
        let mut parts: Vec<NdArray> = Vec::new();
        let mut ctx = Ctx::eval();
        let mut start = 0;
        while start < n {
            let len = chunk.min(n - start);
            let slice = x.slice(0, start, len).expect("embed chunk");
            let enc = self.encode(&slice, &mut ctx);
            parts.push(extract(&enc).to_array());
            start += len;
        }
        let refs: Vec<&NdArray> = parts.iter().collect();
        NdArray::concat(&refs, 0)
    }
}

impl Module for TimeDrl {
    fn parameters(&self) -> Vec<Var> {
        let mut ps = vec![self.cls.clone(), self.pos.clone()];
        ps.extend(self.token_proj.parameters());
        ps.extend(self.encoder.parameters());
        ps.extend(self.pred_head.parameters());
        ps.extend(self.contrast_head.parameters());
        ps
    }
}

/// Reshapes a `[B, T, C]` batch into `[B·C, T, 1]` univariate samples —
/// the channel-independence treatment of Section V.4 (PatchTST-style).
pub fn channel_independent(x: &NdArray) -> NdArray {
    assert_eq!(x.rank(), 3, "channel_independent expects [B, T, C]");
    let (b, t, c) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    // [B, T, C] -> [B, C, T] -> [B·C, T, 1]
    x.permute(&[0, 2, 1]).reshape(&[b * c, t, 1]).expect("channel fold")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;

    fn model() -> TimeDrl {
        TimeDrl::new(TimeDrlConfig::forecasting(64))
    }

    #[test]
    fn encode_shapes_follow_eq_three() {
        let m = model();
        let mut rng = Prng::new(0);
        let x = rng.randn(&[4, 64, 1]);
        let enc = m.encode(&x, &mut Ctx::eval());
        assert_eq!(enc.z.shape(), vec![4, 1 + 8, 32]); // 64/8 patches + CLS
        assert_eq!(enc.x_patched.shape(), &[4, 8, 8]);
        assert_eq!(enc.instance(Pooling::Cls).shape(), vec![4, 32]);
        assert_eq!(enc.timestamps().shape(), vec![4, 8, 32]);
    }

    #[test]
    fn predictive_head_reconstruction_shape() {
        let m = model();
        let mut rng = Prng::new(1);
        let x = rng.randn(&[2, 64, 1]);
        let enc = m.encode(&x, &mut Ctx::eval());
        let recon = m.predict_patches(&enc.timestamps());
        assert_eq!(recon.shape(), enc.x_patched.shape().to_vec());
    }

    #[test]
    fn cls_token_influences_instance_embedding_only_via_attention() {
        // Two different inputs must produce different CLS embeddings —
        // i.e., the CLS token actually aggregates sequence content.
        let m = model();
        let mut rng = Prng::new(2);
        let x1 = rng.randn(&[1, 64, 1]);
        let x2 = rng.randn(&[1, 64, 1]);
        let z1 = m.encode(&x1, &mut Ctx::eval()).instance(Pooling::Cls).to_array();
        let z2 = m.encode(&x2, &mut Ctx::eval()).instance(Pooling::Cls).to_array();
        assert!(z1.max_abs_diff(&z2) > 1e-4);
    }

    #[test]
    fn embed_instances_batches_consistently() {
        // Chunked embedding must equal single-shot embedding.
        let m = model();
        let mut rng = Prng::new(3);
        let x = rng.randn(&[10, 64, 1]);
        let all = m.embed_instances(&x);
        let first = m.embed_instances(&x.slice(0, 0, 3).unwrap());
        assert_eq!(all.shape(), &[10, 32]);
        for i in 0..3 * 32 {
            assert!((all.data()[i] - first.data()[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn channel_independent_layout() {
        // x[b, t, c] = 100b + 10t + c
        let x = NdArray::from_fn(&[2, 3, 2], |flat| {
            let b = flat / 6;
            let t = (flat % 6) / 2;
            let c = flat % 2;
            (100 * b + 10 * t + c) as f32
        });
        let y = channel_independent(&x);
        assert_eq!(y.shape(), &[4, 3, 1]);
        // Sample 0 = batch 0 channel 0: [0, 10, 20].
        assert_eq!(y.at(&[0, 0, 0]), 0.0);
        assert_eq!(y.at(&[0, 2, 0]), 20.0);
        // Sample 1 = batch 0 channel 1: [1, 11, 21].
        assert_eq!(y.at(&[1, 1, 0]), 11.0);
        // Sample 2 = batch 1 channel 0.
        assert_eq!(y.at(&[2, 0, 0]), 100.0);
    }

    #[test]
    fn all_parameters_reachable_from_losses() {
        let m = model();
        let mut rng = Prng::new(4);
        let x = rng.randn(&[2, 64, 1]);
        let mut ctx = Ctx::train(5);
        let enc = m.encode(&x, &mut ctx);
        let recon_loss = m.predict_patches(&enc.timestamps()).mse_loss(&enc.x_patched);
        let proj = m.project_instance(&enc.instance(Pooling::Cls), true);
        let total = recon_loss.add(&proj.powf(2.0).mean());
        total.backward();
        let missing = m
            .parameters()
            .iter()
            .filter(|p| p.grad().is_none())
            .count();
        assert_eq!(missing, 0, "{missing} parameters unreachable");
    }

    #[test]
    fn multichannel_classification_model() {
        let m = TimeDrl::new(TimeDrlConfig::classification(128, 9));
        let mut rng = Prng::new(6);
        let x = rng.randn(&[3, 128, 9]);
        let enc = m.encode(&x, &mut Ctx::eval());
        assert_eq!(enc.z.shape()[0], 3);
        assert_eq!(enc.x_patched.shape()[2], 9 * m.config().patch.patch_len);
    }
}
