//! Full training-state snapshots: everything the pre-training loop needs
//! to resume bit-exactly after a crash (DESIGN.md §11).
//!
//! A parameter-only checkpoint ([`TimeDrl::save`](crate::TimeDrl::save))
//! is enough to *use* a model, but not to *continue training* it: AdamW's
//! moment estimates, the bias-correction step count, the epoch/step
//! counters, and the positions of the three PRNG streams (batch shuffling,
//! dropout views, augmentation) all shape every subsequent update. A
//! [`TrainingState`] carries all of them, so a run resumed from epoch `k`
//! replays epochs `k..E` exactly as the uninterrupted run would have —
//! the final checkpoints are byte-identical at any `TIMEDRL_THREADS`.
//!
//! On disk a snapshot is one `KIND_TRAIN_STATE` container in the v2
//! checkpoint format (`timedrl_tensor::serialize`): atomic write, CRC-32
//! over the payload, bounded reads. Layout of the payload body:
//!
//! ```text
//! arrays: parameters          arrays: AdamW m      arrays: AdamW v
//! u32:    AdamW t             u64: next_epoch      u64: global step
//! 3 × 4 × u64: epoch/dropout/augmentation PRNG states
//! arrays: report [total, predictive, contrastive, validation]  (rank-1)
//! ```

use crate::trainer::PretrainReport;
use std::io;
use std::path::Path;
use timedrl_nn::OptimState;
use timedrl_tensor::serialize::{
    decode_arrays, encode_arrays, read_file, write_file_atomic, ByteReader, KIND_TRAIN_STATE,
};
use timedrl_tensor::NdArray;

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Everything the pre-training loop needs to resume bit-exactly.
#[derive(Debug, Clone)]
pub struct TrainingState {
    /// Model parameters in stable `parameters()` order.
    pub params: Vec<NdArray>,
    /// AdamW moments and step count.
    pub opt: OptimState,
    /// The first epoch the resumed run should execute (the snapshot was
    /// taken after epoch `next_epoch - 1` finished).
    pub next_epoch: u64,
    /// Global optimizer step counter.
    pub step: u64,
    /// xoshiro256++ state of the batch-shuffling stream.
    pub epoch_rng: [u64; 4],
    /// xoshiro256++ state of the dropout-view stream (`Ctx`).
    pub ctx_rng: [u64; 4],
    /// xoshiro256++ state of the augmentation stream.
    pub aug_rng: [u64; 4],
    /// Per-epoch loss history up to the snapshot, so the resumed run's
    /// report covers the whole training run, not just its own epochs.
    pub report: PretrainReport,
}

fn encode_rank1(buf: &mut Vec<u8>, series: &[&[f32]]) {
    let arrays: Vec<NdArray> = series
        .iter()
        .map(|s| NdArray::from_vec(&[s.len()], s.to_vec()).expect("rank-1 shape"))
        .collect();
    let refs: Vec<&NdArray> = arrays.iter().collect();
    encode_arrays(buf, &refs);
}

/// Atomically writes a training-state snapshot to `path`.
pub fn save_training_state(path: impl AsRef<Path>, state: &TrainingState) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&KIND_TRAIN_STATE.to_le_bytes());
    let param_refs: Vec<&NdArray> = state.params.iter().collect();
    encode_arrays(&mut payload, &param_refs);
    let m_refs: Vec<&NdArray> = state.opt.m.iter().collect();
    encode_arrays(&mut payload, &m_refs);
    let v_refs: Vec<&NdArray> = state.opt.v.iter().collect();
    encode_arrays(&mut payload, &v_refs);
    payload.extend_from_slice(&state.opt.t.to_le_bytes());
    payload.extend_from_slice(&state.next_epoch.to_le_bytes());
    payload.extend_from_slice(&state.step.to_le_bytes());
    for rng in [&state.epoch_rng, &state.ctx_rng, &state.aug_rng] {
        for word in rng {
            payload.extend_from_slice(&word.to_le_bytes());
        }
    }
    encode_rank1(
        &mut payload,
        &[
            &state.report.total,
            &state.report.predictive,
            &state.report.contrastive,
            &state.report.validation,
        ],
    );
    write_file_atomic(path, &payload)
}

/// Reads and validates a training-state snapshot from `path`.
///
/// # Errors
/// `InvalidData` on any corruption (bad magic/version/kind, checksum
/// mismatch, truncation, trailing bytes, shape garbage, inconsistent
/// section counts, or a degenerate PRNG state). The reader never
/// allocates beyond the file's actual size.
pub fn load_training_state(path: impl AsRef<Path>) -> io::Result<TrainingState> {
    let payload = read_file(path, KIND_TRAIN_STATE)?;
    let mut r = ByteReader::new(&payload);
    let params = decode_arrays(&mut r)?;
    let m = decode_arrays(&mut r)?;
    let v = decode_arrays(&mut r)?;
    if m.len() != params.len() || v.len() != params.len() {
        return Err(invalid(format!(
            "optimizer sections hold {} m / {} v arrays for {} parameters",
            m.len(),
            v.len(),
            params.len()
        )));
    }
    for (i, p) in params.iter().enumerate() {
        if m[i].shape() != p.shape() || v[i].shape() != p.shape() {
            return Err(invalid(format!(
                "optimizer moment {i} shaped {:?}/{:?} for parameter {:?}",
                m[i].shape(),
                v[i].shape(),
                p.shape()
            )));
        }
    }
    let t = r.u32()?;
    let next_epoch = r.u64()?;
    let step = r.u64()?;
    let mut rngs = [[0u64; 4]; 3];
    for rng in &mut rngs {
        for word in rng.iter_mut() {
            *word = r.u64()?;
        }
    }
    for (name, rng) in [("epoch", rngs[0]), ("dropout", rngs[1]), ("augmentation", rngs[2])] {
        if rng == [0; 4] {
            return Err(invalid(format!("degenerate all-zero {name} PRNG state")));
        }
    }
    let report_arrays = decode_arrays(&mut r)?;
    let [total, predictive, contrastive, validation]: [NdArray; 4] = report_arrays
        .try_into()
        .map_err(|a: Vec<NdArray>| invalid(format!("report holds {} series, expected 4", a.len())))?;
    let mut series = Vec::with_capacity(4);
    for (name, a) in [
        ("total", &total),
        ("predictive", &predictive),
        ("contrastive", &contrastive),
        ("validation", &validation),
    ] {
        if a.rank() != 1 {
            return Err(invalid(format!("report series '{name}' has rank {}", a.rank())));
        }
        series.push(a.data().to_vec());
    }
    let validation_len = series[3].len();
    if series[..3].iter().any(|s| s.len() as u64 != next_epoch)
        || (validation_len != 0 && validation_len as u64 != next_epoch)
    {
        return Err(invalid(format!(
            "report lengths {:?} inconsistent with next_epoch {next_epoch}",
            series.iter().map(|s| s.len()).collect::<Vec<_>>()
        )));
    }
    r.finish()?;
    let mut it = series.into_iter();
    let report = PretrainReport {
        total: it.next().unwrap(),
        predictive: it.next().unwrap(),
        contrastive: it.next().unwrap(),
        validation: it.next().unwrap(),
    };
    Ok(TrainingState {
        params,
        opt: OptimState { m, v, t },
        next_epoch,
        step,
        epoch_rng: rngs[0],
        ctx_rng: rngs[1],
        aug_rng: rngs[2],
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::Prng;

    fn sample_state() -> TrainingState {
        let mut rng = Prng::new(3);
        let params = vec![rng.randn(&[3, 4]), rng.randn(&[5])];
        let m = vec![rng.randn(&[3, 4]), rng.randn(&[5])];
        let v = vec![rng.randn(&[3, 4]), rng.randn(&[5])];
        TrainingState {
            params,
            opt: OptimState { m, v, t: 17 },
            next_epoch: 2,
            step: 42,
            epoch_rng: [1, 2, 3, 4],
            ctx_rng: [5, 6, 7, 8],
            aug_rng: [9, 10, 11, 12],
            report: PretrainReport {
                total: vec![1.5, 1.2],
                predictive: vec![1.0, 0.8],
                contrastive: vec![0.5, 0.4],
                validation: vec![],
            },
        }
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let dir = std::env::temp_dir().join("timedrl_trainstate_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.tdrl");
        let state = sample_state();
        save_training_state(&path, &state).unwrap();
        let back = load_training_state(&path).unwrap();
        assert_eq!(back.params, state.params);
        assert_eq!(back.opt.m, state.opt.m);
        assert_eq!(back.opt.v, state.opt.v);
        assert_eq!(back.opt.t, state.opt.t);
        assert_eq!(back.next_epoch, state.next_epoch);
        assert_eq!(back.step, state.step);
        assert_eq!(back.epoch_rng, state.epoch_rng);
        assert_eq!(back.ctx_rng, state.ctx_rng);
        assert_eq!(back.aug_rng, state.aug_rng);
        assert_eq!(back.report.total, state.report.total);
        assert_eq!(back.report.validation, state.report.validation);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn any_byte_flip_is_rejected() {
        let dir = std::env::temp_dir().join("timedrl_trainstate_flip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.tdrl");
        save_training_state(&path, &sample_state()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let corrupt_path = dir.join("corrupt.tdrl");
        // Exhaustive over a small state: every byte position.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            std::fs::write(&corrupt_path, &corrupt).unwrap();
            assert!(
                load_training_state(&corrupt_path).is_err(),
                "flip at byte {i}/{} loaded successfully",
                bytes.len()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn params_checkpoint_is_not_a_training_state() {
        let dir = std::env::temp_dir().join("timedrl_trainstate_kind");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.tdrl");
        let p = timedrl_tensor::Var::parameter(Prng::new(0).randn(&[4]));
        timedrl_tensor::save_parameters(&path, &[p]).unwrap();
        let err = load_training_state(&path).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
