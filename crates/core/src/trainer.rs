//! The self-supervised pre-training loop (Fig. 3a).
//!
//! Two gradient paths share the optimizer step:
//!
//! * the default whole-batch path (`micro_batch: None`) — one forward and
//!   backward per batch on the caller's model, byte-for-byte the historical
//!   behaviour;
//! * the data-parallel path (`micro_batch: Some(m)`) — each batch splits
//!   into micro-batches of `m` samples that run on *independent model
//!   replicas* fanned out over `testkit::pool`, each with its own
//!   deterministically-derived dropout/augmentation streams. Gradients come
//!   back as plain arrays and are reduced on the calling thread in
//!   micro-batch index order with fixed weights, so the update — and hence
//!   the final checkpoint — is bit-identical at any `TIMEDRL_THREADS`.
//!
//! The autograd graph (`Var`) is `Rc`-based and deliberately not `Send`;
//! replicas are rebuilt inside each worker from a parameter snapshot, which
//! is what keeps the parallel path safe without locks.
//!
//! # Fault tolerance (DESIGN.md §11)
//!
//! The loop is panic-free: every failure — bad config, empty data, a
//! non-finite loss, a checkpoint I/O problem — surfaces as a typed
//! [`TrainError`]. With `checkpoint_every`/`checkpoint_path` set, a full
//! [`TrainingState`](crate::checkpoint::TrainingState) snapshot is written
//! atomically at the configured epoch cadence; `resume_from` restores one
//! and replays the remaining epochs *bit-exactly* — the resumed run's
//! final checkpoint is byte-identical to an uninterrupted run's, at any
//! `TIMEDRL_THREADS`. A NaN/inf loss aborts the optimizer step before the
//! poisoned gradients are applied, so the last snapshot on disk stays a
//! loadable last-good state.

use crate::checkpoint::{load_training_state, save_training_state, TrainingState};
use crate::config::TimeDrlConfig;
use crate::error::TrainError;
use crate::model::TimeDrl;
use crate::pretext::{pretext_loss, PretextBreakdown};
use std::path::PathBuf;
use testkit::pool;
use timedrl_data::BatchIndices;
use timedrl_nn::{clip_grad_norm, AdamW, Ctx, Module, Optimizer};
use timedrl_tensor::{NdArray, Prng};

/// Per-epoch history of a pre-training run.
#[derive(Debug, Clone, Default)]
pub struct PretrainReport {
    /// Mean joint loss per epoch.
    pub total: Vec<f32>,
    /// Mean predictive loss per epoch.
    pub predictive: Vec<f32>,
    /// Mean contrastive loss per epoch.
    pub contrastive: Vec<f32>,
    /// Validation joint loss per epoch (only when pre-training with a
    /// validation set; empty otherwise).
    pub validation: Vec<f32>,
}

impl PretrainReport {
    /// Final-epoch joint loss, or `None` for a report with no completed
    /// epochs. (Total by construction — the old `expect`-based accessor
    /// aborted zero-epoch runs.)
    pub fn final_loss(&self) -> Option<f32> {
        self.total.last().copied()
    }

    /// Epoch index with the lowest validation loss, if tracked.
    pub fn best_validation_epoch(&self) -> Option<usize> {
        self.validation
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
    }
}

/// Pre-trains `model` on unlabeled windows `[N, T, C]` with AdamW, exactly
/// the Siamese two-pass protocol of Fig. 3a. Returns the loss history.
///
/// The caller applies channel-independence (if configured) *before* calling
/// this: windows must already match the model's `n_features`.
///
/// # Errors
/// [`TrainError`] on an invalid training plan, malformed/empty windows, a
/// non-finite loss (the step is aborted first), or a checkpoint failure.
pub fn pretrain(model: &TimeDrl, windows: &NdArray) -> Result<PretrainReport, TrainError> {
    pretrain_impl(model, windows, None)
}

/// Like [`pretrain`], additionally evaluating the pretext loss on
/// `val_windows` at the end of every epoch (the paper's 60/20/20 split
/// reserves 20% for validation). Validation uses a fixed dropout stream
/// per epoch so the two-view loss is comparable across epochs, and takes
/// no gradient steps.
///
/// # Errors
/// Same failure modes as [`pretrain`].
pub fn pretrain_with_validation(
    model: &TimeDrl,
    windows: &NdArray,
    val_windows: &NdArray,
) -> Result<PretrainReport, TrainError> {
    pretrain_impl(model, windows, Some(val_windows))
}

fn pretrain_impl(
    model: &TimeDrl,
    windows: &NdArray,
    val_windows: Option<&NdArray>,
) -> Result<PretrainReport, TrainError> {
    let cfg = model.config().clone();
    cfg.check().map_err(TrainError::InvalidConfig)?;
    if cfg.epochs == 0 {
        return Err(TrainError::InvalidConfig("epochs is 0 — no training planned".into()));
    }
    if windows.rank() != 3 {
        return Err(TrainError::BadWindows { expected: "[N, T, C]", got: windows.shape().to_vec() });
    }
    if windows.shape()[0] == 0 {
        return Err(TrainError::EmptyTrainingSet);
    }
    let mut opt = AdamW::new(model.parameters(), cfg.lr, cfg.weight_decay);
    let mut epoch_rng = Prng::new(cfg.seed ^ 0x5eed_0001);
    let mut ctx = Ctx::train(cfg.seed ^ 0x5eed_0002);
    let mut aug_rng = Prng::new(cfg.seed ^ 0x5eed_0003);
    let n = windows.shape()[0];

    let mut report = PretrainReport::default();
    let mut step = 0u64;
    let mut start_epoch = 0usize;
    let mut last_checkpoint: Option<PathBuf> = None;

    if let Some(path) = &cfg.resume_from {
        let state = load_training_state(path)?;
        restore_state(model, &mut opt, &cfg, state, &mut epoch_rng, &mut ctx, &mut aug_rng, &mut report, &mut step, &mut start_epoch)?;
        last_checkpoint = Some(path.clone());
    }

    for epoch in start_epoch..cfg.epochs {
        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0usize;
        let batch_iter = BatchIndices::new(n, cfg.batch_size, Some(&mut epoch_rng))
            .map_err(|e| TrainError::InvalidConfig(e.to_string()))?;
        for idx in batch_iter {
            let breakdown = match cfg.micro_batch {
                Some(m) => micro_batch_step(model, &cfg, windows, &idx, m, step, &mut opt),
                None => {
                    let batch = gather_rows(windows, &idx);
                    opt.zero_grad();
                    let (loss, breakdown) = pretext_loss(model, &batch, &mut ctx, &mut aug_rng);
                    if breakdown.total.is_finite() {
                        loss.try_backward().map_err(StepError::Backward).map(|()| {
                            clip_grad_norm(opt.parameters(), 5.0);
                            opt.step();
                            breakdown
                        })
                    } else {
                        Err(StepError::NonFinite(breakdown.total))
                    }
                }
            };
            // Either guard aborts the step before `opt.step()`, so
            // parameters and any on-disk snapshot hold the last good state.
            let breakdown = breakdown.map_err(|e| match e {
                StepError::NonFinite(loss) => TrainError::NonFiniteLoss {
                    epoch,
                    step,
                    batch: batches,
                    loss,
                    last_checkpoint: last_checkpoint.clone(),
                },
                StepError::Backward(e) => TrainError::Backward(e),
            })?;
            sums.0 += breakdown.total as f64;
            sums.1 += breakdown.predictive as f64;
            sums.2 += breakdown.contrastive as f64;
            batches += 1;
            step += 1;
        }
        if batches > 0 {
            let b = batches as f64;
            report.total.push((sums.0 / b) as f32);
            report.predictive.push((sums.1 / b) as f32);
            report.contrastive.push((sums.2 / b) as f32);
        }

        if let Some(val) = val_windows {
            // Fixed seed per evaluation: the dropout views (which the
            // contrastive term needs) are identical across epochs, so the
            // validation series is comparable.
            let mut val_ctx = Ctx::train(cfg.seed ^ 0x5eed_0004);
            let mut val_aug = Prng::new(cfg.seed ^ 0x5eed_0005);
            let mut sum = 0.0f64;
            let mut count = 0usize;
            let val_iter = BatchIndices::new(val.shape()[0], cfg.batch_size, None)
                .map_err(|e| TrainError::InvalidConfig(e.to_string()))?;
            for idx in val_iter {
                let batch = gather_rows(val, &idx);
                let (_, breakdown) = pretext_loss(model, &batch, &mut val_ctx, &mut val_aug);
                sum += breakdown.total as f64;
                count += 1;
            }
            report.validation.push((sum / count.max(1) as f64) as f32);
        }

        if let (Some(every), Some(path)) = (cfg.checkpoint_every, &cfg.checkpoint_path) {
            if (epoch + 1) % every == 0 {
                let state = capture_state(model, &opt, epoch + 1, step, &epoch_rng, &ctx, &aug_rng, &report);
                save_training_state(path, &state)?;
                last_checkpoint = Some(path.clone());
            }
        }
    }
    Ok(report)
}

/// Snapshots the complete loop state as of the end of epoch `next_epoch -
/// 1` — exactly what [`restore_state`] needs to continue bit-exactly.
#[allow(clippy::too_many_arguments)]
fn capture_state(
    model: &TimeDrl,
    opt: &AdamW,
    next_epoch: usize,
    step: u64,
    epoch_rng: &Prng,
    ctx: &Ctx,
    aug_rng: &Prng,
    report: &PretrainReport,
) -> TrainingState {
    TrainingState {
        params: model.parameters().iter().map(|p| p.to_array()).collect(),
        opt: opt.export_state(),
        next_epoch: next_epoch as u64,
        step,
        epoch_rng: epoch_rng.state(),
        ctx_rng: ctx.rng.state(),
        aug_rng: aug_rng.state(),
        report: report.clone(),
    }
}

/// Installs a loaded snapshot into the live training loop, validating it
/// against the model and plan first.
#[allow(clippy::too_many_arguments)]
fn restore_state(
    model: &TimeDrl,
    opt: &mut AdamW,
    cfg: &TimeDrlConfig,
    state: TrainingState,
    epoch_rng: &mut Prng,
    ctx: &mut Ctx,
    aug_rng: &mut Prng,
    report: &mut PretrainReport,
    step: &mut u64,
    start_epoch: &mut usize,
) -> Result<(), TrainError> {
    let params = model.parameters();
    if state.params.len() != params.len() {
        return Err(TrainError::ResumeMismatch(format!(
            "checkpoint has {} parameters, model has {}",
            state.params.len(),
            params.len()
        )));
    }
    for (i, (p, a)) in params.iter().zip(&state.params).enumerate() {
        if p.shape() != a.shape() {
            return Err(TrainError::ResumeMismatch(format!(
                "parameter {i}: model shape {:?} vs checkpoint {:?}",
                p.shape(),
                a.shape()
            )));
        }
    }
    if state.next_epoch > cfg.epochs as u64 {
        return Err(TrainError::ResumeMismatch(format!(
            "checkpoint is at epoch {} of a {}-epoch plan",
            state.next_epoch, cfg.epochs
        )));
    }
    opt.import_state(state.opt).map_err(TrainError::ResumeMismatch)?;
    *epoch_rng = Prng::from_state(state.epoch_rng)
        .map_err(|e| TrainError::ResumeMismatch(e.into()))?;
    ctx.rng = Prng::from_state(state.ctx_rng)
        .map_err(|e| TrainError::ResumeMismatch(e.into()))?;
    *aug_rng = Prng::from_state(state.aug_rng)
        .map_err(|e| TrainError::ResumeMismatch(e.into()))?;
    for (p, a) in params.iter().zip(state.params) {
        p.set_value(a);
    }
    *report = state.report;
    *step = state.step;
    *start_epoch = state.next_epoch as usize;
    Ok(())
}

/// One data-parallel optimizer step: fan the batch out as micro-batches on
/// model replicas, reduce the gradients in index order, step once.
///
/// Each micro-batch `j` of optimizer step `step` draws dropout and
/// augmentation randomness from seeds mixed from `(cfg.seed, step, j)` —
/// a function of the *schedule position only*, never of which worker ran
/// it, which is half of the determinism argument. The other half is the
/// reduction: micro-gradients are combined on the calling thread as
/// `Σ_j (|chunk_j| / B) · g_j` in ascending `j`, so the floating-point
/// accumulation order is fixed regardless of thread count.
///
/// The replicas' BatchNorm running statistics are discarded with the
/// replicas (only trainable parameters round-trip), matching what
/// [`TimeDrl::save`] checkpoints.
///
/// Why a single optimizer step was aborted (before `opt.step()` ran).
/// Mapped to the matching [`TrainError`] by the epoch loop, which owns the
/// context (epoch/step/batch indices, last checkpoint) the error reports.
enum StepError {
    /// The reduced loss came back NaN/±inf.
    NonFinite(f32),
    /// A backward rule failed with a typed tensor error.
    Backward(timedrl_tensor::TensorError),
}

/// `Err` reports an aborted step — a non-finite reduced loss or a failed
/// backward rule; the optimizer step is skipped either way, so the caller's
/// parameters stay at their pre-batch values.
fn micro_batch_step(
    model: &TimeDrl,
    cfg: &TimeDrlConfig,
    windows: &NdArray,
    idx: &[usize],
    micro: usize,
    step: u64,
    opt: &mut AdamW,
) -> Result<PretextBreakdown, StepError> {
    assert!(micro > 0, "micro_batch must be positive");
    let params = model.parameters();
    let snapshot: Vec<NdArray> = params.iter().map(|p| p.to_array()).collect();
    let chunks: Vec<&[usize]> = idx.chunks(micro).collect();
    let b_total = idx.len() as f32;
    let results = pool::map_indexed(&chunks, |j, chunk| {
        let batch = gather_rows(windows, chunk);
        let (grads, breakdown) = replica_gradient(
            cfg,
            &snapshot,
            &batch,
            mix_seed(cfg.seed ^ 0x5eed_0002, step, j as u64),
            mix_seed(cfg.seed ^ 0x5eed_0003, step, j as u64),
        )?;
        Ok((grads, breakdown, chunk.len() as f32 / b_total))
    });
    opt.zero_grad();
    let mut reduced: Vec<NdArray> = snapshot.iter().map(|p| NdArray::zeros(p.shape())).collect();
    let mut agg = PretextBreakdown { total: 0.0, predictive: 0.0, contrastive: 0.0 };
    for result in results {
        let (grads, breakdown, w) = result.map_err(StepError::Backward)?;
        for (acc, g) in reduced.iter_mut().zip(grads.iter()) {
            // In-place axpy, still ascending-`j`: each element accumulates
            // `acc + g*w` exactly as the old `acc.add(&g.scale(w))` did,
            // without materializing either intermediate array.
            for (a, &gj) in acc.data_mut().iter_mut().zip(g.data()) {
                *a += gj * w;
            }
        }
        agg.total += w * breakdown.total;
        agg.predictive += w * breakdown.predictive;
        agg.contrastive += w * breakdown.contrastive;
    }
    if !agg.total.is_finite() {
        return Err(StepError::NonFinite(agg.total));
    }
    for (p, g) in params.iter().zip(reduced) {
        p.try_backward_with(g).map_err(StepError::Backward)?;
    }
    clip_grad_norm(opt.parameters(), 5.0);
    opt.step();
    Ok(agg)
}

/// Builds a throwaway model replica from a parameter snapshot, runs one
/// pretext forward/backward on `batch`, and returns the raw gradients in
/// stable `parameters()` order plus the loss breakdown.
///
/// The gradients are a pure function of `(snapshot, batch, ctx_seed,
/// aug_seed)` — never of which thread or *process* ran the replica. The
/// micro-batch path and the multi-process shard workers
/// ([`crate::shard`]) both lean on this for their bit-identical-reduction
/// arguments.
pub(crate) fn replica_gradient(
    cfg: &TimeDrlConfig,
    snapshot: &[NdArray],
    batch: &NdArray,
    ctx_seed: u64,
    aug_seed: u64,
) -> Result<(Vec<NdArray>, PretextBreakdown), timedrl_tensor::TensorError> {
    let replica = TimeDrl::new(cfg.clone());
    for (p, v) in replica.parameters().iter().zip(snapshot.iter()) {
        p.set_value(v.clone());
    }
    let mut ctx = Ctx::train(ctx_seed);
    let mut aug = Prng::new(aug_seed);
    let (loss, breakdown) = pretext_loss(&replica, batch, &mut ctx, &mut aug);
    loss.try_backward()?;
    let grads = replica
        .parameters()
        .iter()
        .map(|p| p.grad().unwrap_or_else(|| NdArray::zeros(&p.shape())))
        .collect();
    Ok((grads, breakdown))
}

/// SplitMix64-style seed mixer: decorrelates the per-micro-batch RNG
/// streams from `(base seed, optimizer step, micro-batch index)` without
/// any shared mutable state.
pub(crate) fn mix_seed(base: u64, step: u64, j: u64) -> u64 {
    let mut z = base
        ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ j.wrapping_mul(0xd1b5_4a32_d192_ed03);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Gathers rows of a `[N, T, C]` tensor into a `[B, T, C]` batch.
///
/// # Panics
/// With a message naming the offending index and the window count if any
/// index is out of range, or if `x` is not rank 3 — instead of the raw
/// slice-bounds abort this used to produce.
pub fn gather_rows(x: &NdArray, indices: &[usize]) -> NdArray {
    assert_eq!(
        x.rank(),
        3,
        "gather_rows expects a [N, T, C] tensor, got shape {:?}",
        x.shape()
    );
    let n = x.shape()[0];
    let (t, c) = (x.shape()[1], x.shape()[2]);
    let row = t * c;
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        assert!(i < n, "gather_rows: index {i} out of range for {n} windows");
        data.extend_from_slice(&x.data()[i * row..(i + 1) * row]);
    }
    NdArray::from_vec(&[indices.len(), t, c], data).expect("batch shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;

    fn tiny_model(seed: u64) -> TimeDrl {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 3;
        cfg.batch_size = 8;
        cfg.seed = seed;
        TimeDrl::new(cfg)
    }

    /// Windows with learnable structure: noisy sinusoids.
    fn structured_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let step = flat % t;
            let phase = i as f32 * 0.3;
            (step as f32 * 0.4 + phase).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn loss_decreases_over_training() {
        let m = tiny_model(0);
        let windows = structured_windows(48, 32, 1);
        let report = pretrain(&m, &windows).unwrap();
        assert_eq!(report.total.len(), 3);
        assert!(
            report.final_loss().unwrap() < report.total[0],
            "loss must decrease: {:?}",
            report.total
        );
    }

    #[test]
    fn predictive_component_decreases() {
        let m = tiny_model(1);
        let windows = structured_windows(48, 32, 2);
        let report = pretrain(&m, &windows).unwrap();
        assert!(report.predictive.last().unwrap() < &report.predictive[0]);
    }

    #[test]
    fn no_embedding_collapse_with_stop_gradient() {
        // After pre-training, instance embeddings of different inputs must
        // remain distinct (std across batch > 0): the SimSiam asymmetry
        // prevents the trivial constant solution.
        let m = tiny_model(2);
        let windows = structured_windows(48, 32, 3);
        pretrain(&m, &windows).unwrap();
        let z = m.embed_instances(&windows);
        let std = z.var_axis(0, false).mean().sqrt();
        assert!(std > 1e-3, "embedding std {std} indicates collapse");
    }

    #[test]
    fn training_is_reproducible_per_seed() {
        let w = structured_windows(24, 32, 4);
        let r1 = pretrain(&tiny_model(7), &w).unwrap();
        let r2 = pretrain(&tiny_model(7), &w).unwrap();
        assert_eq!(r1.total, r2.total);
    }

    #[test]
    fn micro_batch_training_decreases_loss() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 3;
        cfg.batch_size = 8;
        cfg.micro_batch = Some(3);
        let m = TimeDrl::new(cfg);
        let windows = structured_windows(24, 32, 5);
        let report = pretrain(&m, &windows).unwrap();
        assert!(report.final_loss().unwrap() < report.total[0], "loss: {:?}", report.total);
    }

    #[test]
    fn bad_windows_and_empty_sets_are_typed_errors() {
        let m = tiny_model(3);
        let rank2 = NdArray::from_fn(&[4, 32], |i| i as f32);
        assert!(matches!(
            pretrain(&m, &rank2),
            Err(TrainError::BadWindows { .. })
        ));
        let empty = NdArray::zeros(&[0, 32, 1]);
        assert!(matches!(pretrain(&m, &empty), Err(TrainError::EmptyTrainingSet)));
    }

    #[test]
    fn zero_epoch_plan_is_an_invalid_config_not_a_panic() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 0;
        let m = TimeDrl::new(cfg);
        let windows = structured_windows(8, 32, 9);
        let err = pretrain(&m, &windows).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
        // And the empty report stays total: no panic, no NaN.
        assert_eq!(PretrainReport::default().final_loss(), None);
    }

    #[test]
    #[should_panic(expected = "index 5 out of range for 3 windows")]
    fn gather_rows_names_the_bad_index() {
        let x = NdArray::from_fn(&[3, 2, 2], |i| i as f32);
        gather_rows(&x, &[5]);
    }

    #[test]
    fn resume_matches_uninterrupted_run_bit_for_bit() {
        let dir = std::env::temp_dir().join("timedrl_trainer_resume");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.tdrl");
        let windows = structured_windows(24, 32, 8);
        let base = || {
            let mut cfg = TimeDrlConfig::forecasting(32);
            cfg.d_model = 16;
            cfg.d_ff = 32;
            cfg.n_heads = 2;
            cfg.batch_size = 8;
            cfg.seed = 13;
            cfg
        };

        // Uninterrupted: 4 epochs straight.
        let mut cfg = base();
        cfg.epochs = 4;
        let straight = TimeDrl::new(cfg);
        let straight_report = pretrain(&straight, &windows).unwrap();

        // Interrupted: 2 epochs + snapshot, then a fresh process resumes.
        let mut cfg = base();
        cfg.epochs = 2;
        cfg.checkpoint_every = Some(2);
        cfg.checkpoint_path = Some(ckpt.clone());
        pretrain(&TimeDrl::new(cfg), &windows).unwrap();

        let mut cfg = base();
        cfg.epochs = 4;
        cfg.resume_from = Some(ckpt.clone());
        let resumed = TimeDrl::new(cfg);
        let resumed_report = pretrain(&resumed, &windows).unwrap();

        assert_eq!(straight_report.total, resumed_report.total);
        let a: Vec<_> = straight.parameters().iter().map(|p| p.to_array()).collect();
        let b: Vec<_> = resumed.parameters().iter().map(|p| p.to_array()).collect();
        assert_eq!(a, b, "resumed parameters diverged from the straight run");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_mismatched_model() {
        let dir = std::env::temp_dir().join("timedrl_trainer_resume_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.tdrl");
        let windows = structured_windows(16, 32, 10);
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 1;
        cfg.batch_size = 8;
        cfg.checkpoint_every = Some(1);
        cfg.checkpoint_path = Some(ckpt.clone());
        pretrain(&TimeDrl::new(cfg), &windows).unwrap();

        // A differently-sized model must refuse the snapshot.
        let mut other = TimeDrlConfig::forecasting(32);
        other.d_model = 32;
        other.d_ff = 64;
        other.n_heads = 4;
        other.epochs = 2;
        other.resume_from = Some(ckpt.clone());
        let err = pretrain(&TimeDrl::new(other), &windows).unwrap_err();
        assert!(matches!(err, TrainError::ResumeMismatch(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn micro_batch_training_is_thread_count_invariant() {
        let make = || {
            let mut cfg = TimeDrlConfig::forecasting(32);
            cfg.d_model = 16;
            cfg.d_ff = 32;
            cfg.n_heads = 2;
            cfg.epochs = 2;
            cfg.batch_size = 8;
            cfg.seed = 11;
            cfg.micro_batch = Some(3);
            TimeDrl::new(cfg)
        };
        let windows = structured_windows(12, 32, 6);
        let run = |threads: usize| {
            testkit::pool::with_threads(threads, || {
                let m = make();
                let report = pretrain(&m, &windows).unwrap();
                let params: Vec<_> = m.parameters().iter().map(|p| p.to_array()).collect();
                (report.total, params)
            })
        };
        let (loss1, params1) = run(1);
        for threads in [2usize, 4] {
            let (loss_n, params_n) = run(threads);
            assert_eq!(loss1, loss_n, "loss history diverged at {threads} threads");
            assert_eq!(params1, params_n, "parameters diverged at {threads} threads");
        }
    }

    #[test]
    fn gather_rows_layout() {
        let x = NdArray::from_fn(&[3, 2, 2], |i| i as f32);
        let b = gather_rows(&x, &[2, 0]);
        assert_eq!(b.shape(), &[2, 2, 2]);
        assert_eq!(b.at(&[0, 0, 0]), 8.0);
        assert_eq!(b.at(&[1, 0, 0]), 0.0);
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use crate::config::TimeDrlConfig;

    fn windows(n: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, 32, 1], |flat| {
            ((flat % 32) as f32 * 0.4).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn validation_loss_is_tracked_and_decreases() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 4;
        let model = crate::model::TimeDrl::new(cfg);
        let report = pretrain_with_validation(&model, &windows(48, 0), &windows(16, 1)).unwrap();
        assert_eq!(report.validation.len(), 4);
        assert!(report.validation.last().unwrap() < &report.validation[0]);
        assert!(report.best_validation_epoch().is_some());
    }

    #[test]
    fn plain_pretrain_has_no_validation_series() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 1;
        let model = crate::model::TimeDrl::new(cfg);
        let report = pretrain(&model, &windows(16, 2)).unwrap();
        assert!(report.validation.is_empty());
        assert!(report.best_validation_epoch().is_none());
    }
}
