//! The self-supervised pre-training loop (Fig. 3a).
//!
//! Two gradient paths share the optimizer step:
//!
//! * the default whole-batch path (`micro_batch: None`) — one forward and
//!   backward per batch on the caller's model, byte-for-byte the historical
//!   behaviour;
//! * the data-parallel path (`micro_batch: Some(m)`) — each batch splits
//!   into micro-batches of `m` samples that run on *independent model
//!   replicas* fanned out over `testkit::pool`, each with its own
//!   deterministically-derived dropout/augmentation streams. Gradients come
//!   back as plain arrays and are reduced on the calling thread in
//!   micro-batch index order with fixed weights, so the update — and hence
//!   the final checkpoint — is bit-identical at any `TIMEDRL_THREADS`.
//!
//! The autograd graph (`Var`) is `Rc`-based and deliberately not `Send`;
//! replicas are rebuilt inside each worker from a parameter snapshot, which
//! is what keeps the parallel path safe without locks.

use crate::config::TimeDrlConfig;
use crate::model::TimeDrl;
use crate::pretext::{pretext_loss, PretextBreakdown};
use testkit::pool;
use timedrl_data::BatchIndices;
use timedrl_nn::{clip_grad_norm, AdamW, Ctx, Module, Optimizer};
use timedrl_tensor::{NdArray, Prng};

/// Per-epoch history of a pre-training run.
#[derive(Debug, Clone, Default)]
pub struct PretrainReport {
    /// Mean joint loss per epoch.
    pub total: Vec<f32>,
    /// Mean predictive loss per epoch.
    pub predictive: Vec<f32>,
    /// Mean contrastive loss per epoch.
    pub contrastive: Vec<f32>,
    /// Validation joint loss per epoch (only when pre-training with a
    /// validation set; empty otherwise).
    pub validation: Vec<f32>,
}

impl PretrainReport {
    /// Final-epoch joint loss.
    pub fn final_loss(&self) -> f32 {
        *self.total.last().expect("empty report")
    }

    /// Epoch index with the lowest validation loss, if tracked.
    pub fn best_validation_epoch(&self) -> Option<usize> {
        self.validation
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
    }
}

/// Pre-trains `model` on unlabeled windows `[N, T, C]` with AdamW, exactly
/// the Siamese two-pass protocol of Fig. 3a. Returns the loss history.
///
/// The caller applies channel-independence (if configured) *before* calling
/// this: windows must already match the model's `n_features`.
pub fn pretrain(model: &TimeDrl, windows: &NdArray) -> PretrainReport {
    pretrain_impl(model, windows, None)
}

/// Like [`pretrain`], additionally evaluating the pretext loss on
/// `val_windows` at the end of every epoch (the paper's 60/20/20 split
/// reserves 20% for validation). Validation uses a fixed dropout stream
/// per epoch so the two-view loss is comparable across epochs, and takes
/// no gradient steps.
pub fn pretrain_with_validation(
    model: &TimeDrl,
    windows: &NdArray,
    val_windows: &NdArray,
) -> PretrainReport {
    pretrain_impl(model, windows, Some(val_windows))
}

fn pretrain_impl(model: &TimeDrl, windows: &NdArray, val_windows: Option<&NdArray>) -> PretrainReport {
    let cfg = model.config().clone();
    assert_eq!(windows.rank(), 3, "pretrain expects [N, T, C]");
    assert!(windows.shape()[0] > 0, "no training windows");
    let mut opt = AdamW::new(model.parameters(), cfg.lr, cfg.weight_decay);
    let mut epoch_rng = Prng::new(cfg.seed ^ 0x5eed_0001);
    let mut ctx = Ctx::train(cfg.seed ^ 0x5eed_0002);
    let mut aug_rng = Prng::new(cfg.seed ^ 0x5eed_0003);
    let n = windows.shape()[0];

    let mut report = PretrainReport::default();
    let mut step = 0u64;
    for _epoch in 0..cfg.epochs {
        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0usize;
        for idx in BatchIndices::new(n, cfg.batch_size, Some(&mut epoch_rng)) {
            let breakdown = match cfg.micro_batch {
                Some(m) => micro_batch_step(model, &cfg, windows, &idx, m, step, &mut opt),
                None => {
                    let batch = gather_rows(windows, &idx);
                    opt.zero_grad();
                    let (loss, breakdown) = pretext_loss(model, &batch, &mut ctx, &mut aug_rng);
                    loss.backward();
                    clip_grad_norm(opt.parameters(), 5.0);
                    opt.step();
                    breakdown
                }
            };
            sums.0 += breakdown.total as f64;
            sums.1 += breakdown.predictive as f64;
            sums.2 += breakdown.contrastive as f64;
            batches += 1;
            step += 1;
        }
        let b = batches as f64;
        report.total.push((sums.0 / b) as f32);
        report.predictive.push((sums.1 / b) as f32);
        report.contrastive.push((sums.2 / b) as f32);

        if let Some(val) = val_windows {
            // Fixed seed per evaluation: the dropout views (which the
            // contrastive term needs) are identical across epochs, so the
            // validation series is comparable.
            let mut val_ctx = Ctx::train(cfg.seed ^ 0x5eed_0004);
            let mut val_aug = Prng::new(cfg.seed ^ 0x5eed_0005);
            let mut sum = 0.0f64;
            let mut count = 0usize;
            for idx in BatchIndices::new(val.shape()[0], cfg.batch_size, None) {
                let batch = gather_rows(val, &idx);
                let (_, breakdown) = pretext_loss(model, &batch, &mut val_ctx, &mut val_aug);
                sum += breakdown.total as f64;
                count += 1;
            }
            report.validation.push((sum / count.max(1) as f64) as f32);
        }
    }
    report
}

/// One data-parallel optimizer step: fan the batch out as micro-batches on
/// model replicas, reduce the gradients in index order, step once.
///
/// Each micro-batch `j` of optimizer step `step` draws dropout and
/// augmentation randomness from seeds mixed from `(cfg.seed, step, j)` —
/// a function of the *schedule position only*, never of which worker ran
/// it, which is half of the determinism argument. The other half is the
/// reduction: micro-gradients are combined on the calling thread as
/// `Σ_j (|chunk_j| / B) · g_j` in ascending `j`, so the floating-point
/// accumulation order is fixed regardless of thread count.
///
/// The replicas' BatchNorm running statistics are discarded with the
/// replicas (only trainable parameters round-trip), matching what
/// [`TimeDrl::save`] checkpoints.
fn micro_batch_step(
    model: &TimeDrl,
    cfg: &TimeDrlConfig,
    windows: &NdArray,
    idx: &[usize],
    micro: usize,
    step: u64,
    opt: &mut AdamW,
) -> PretextBreakdown {
    assert!(micro > 0, "micro_batch must be positive");
    let params = model.parameters();
    let snapshot: Vec<NdArray> = params.iter().map(|p| p.to_array()).collect();
    let chunks: Vec<&[usize]> = idx.chunks(micro).collect();
    let b_total = idx.len() as f32;
    let results = pool::map_indexed(&chunks, |j, chunk| {
        let replica = TimeDrl::new(cfg.clone());
        for (p, v) in replica.parameters().iter().zip(snapshot.iter()) {
            p.set_value(v.clone());
        }
        let mut ctx = Ctx::train(mix_seed(cfg.seed ^ 0x5eed_0002, step, j as u64));
        let mut aug = Prng::new(mix_seed(cfg.seed ^ 0x5eed_0003, step, j as u64));
        let batch = gather_rows(windows, chunk);
        let (loss, breakdown) = pretext_loss(&replica, &batch, &mut ctx, &mut aug);
        loss.backward();
        let grads: Vec<NdArray> = replica
            .parameters()
            .iter()
            .map(|p| p.grad().unwrap_or_else(|| NdArray::zeros(&p.shape())))
            .collect();
        (grads, breakdown, chunk.len() as f32 / b_total)
    });
    opt.zero_grad();
    let mut reduced: Vec<NdArray> = snapshot.iter().map(|p| NdArray::zeros(p.shape())).collect();
    let mut agg = PretextBreakdown { total: 0.0, predictive: 0.0, contrastive: 0.0 };
    for (grads, breakdown, w) in &results {
        let w = *w;
        for (acc, g) in reduced.iter_mut().zip(grads.iter()) {
            // In-place axpy, still ascending-`j`: each element accumulates
            // `acc + g*w` exactly as the old `acc.add(&g.scale(w))` did,
            // without materializing either intermediate array.
            for (a, &gj) in acc.data_mut().iter_mut().zip(g.data()) {
                *a += gj * w;
            }
        }
        agg.total += w * breakdown.total;
        agg.predictive += w * breakdown.predictive;
        agg.contrastive += w * breakdown.contrastive;
    }
    for (p, g) in params.iter().zip(reduced) {
        p.backward_with(g);
    }
    clip_grad_norm(opt.parameters(), 5.0);
    opt.step();
    agg
}

/// SplitMix64-style seed mixer: decorrelates the per-micro-batch RNG
/// streams from `(base seed, optimizer step, micro-batch index)` without
/// any shared mutable state.
fn mix_seed(base: u64, step: u64, j: u64) -> u64 {
    let mut z = base
        ^ step.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ j.wrapping_mul(0xd1b5_4a32_d192_ed03);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Gathers rows of a `[N, T, C]` tensor into a `[B, T, C]` batch.
pub fn gather_rows(x: &NdArray, indices: &[usize]) -> NdArray {
    let (t, c) = (x.shape()[1], x.shape()[2]);
    let row = t * c;
    let mut data = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        data.extend_from_slice(&x.data()[i * row..(i + 1) * row]);
    }
    NdArray::from_vec(&[indices.len(), t, c], data).expect("batch shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;

    fn tiny_model(seed: u64) -> TimeDrl {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 3;
        cfg.batch_size = 8;
        cfg.seed = seed;
        TimeDrl::new(cfg)
    }

    /// Windows with learnable structure: noisy sinusoids.
    fn structured_windows(n: usize, t: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, t, 1], |flat| {
            let i = flat / t;
            let step = flat % t;
            let phase = i as f32 * 0.3;
            (step as f32 * 0.4 + phase).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn loss_decreases_over_training() {
        let m = tiny_model(0);
        let windows = structured_windows(48, 32, 1);
        let report = pretrain(&m, &windows);
        assert_eq!(report.total.len(), 3);
        assert!(
            report.final_loss() < report.total[0],
            "loss must decrease: {:?}",
            report.total
        );
    }

    #[test]
    fn predictive_component_decreases() {
        let m = tiny_model(1);
        let windows = structured_windows(48, 32, 2);
        let report = pretrain(&m, &windows);
        assert!(report.predictive.last().unwrap() < &report.predictive[0]);
    }

    #[test]
    fn no_embedding_collapse_with_stop_gradient() {
        // After pre-training, instance embeddings of different inputs must
        // remain distinct (std across batch > 0): the SimSiam asymmetry
        // prevents the trivial constant solution.
        let m = tiny_model(2);
        let windows = structured_windows(48, 32, 3);
        pretrain(&m, &windows);
        let z = m.embed_instances(&windows);
        let std = z.var_axis(0, false).mean().sqrt();
        assert!(std > 1e-3, "embedding std {std} indicates collapse");
    }

    #[test]
    fn training_is_reproducible_per_seed() {
        let w = structured_windows(24, 32, 4);
        let r1 = pretrain(&tiny_model(7), &w);
        let r2 = pretrain(&tiny_model(7), &w);
        assert_eq!(r1.total, r2.total);
    }

    #[test]
    fn micro_batch_training_decreases_loss() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 3;
        cfg.batch_size = 8;
        cfg.micro_batch = Some(3);
        let m = TimeDrl::new(cfg);
        let windows = structured_windows(24, 32, 5);
        let report = pretrain(&m, &windows);
        assert!(report.final_loss() < report.total[0], "loss: {:?}", report.total);
    }

    #[test]
    fn micro_batch_training_is_thread_count_invariant() {
        let make = || {
            let mut cfg = TimeDrlConfig::forecasting(32);
            cfg.d_model = 16;
            cfg.d_ff = 32;
            cfg.n_heads = 2;
            cfg.epochs = 2;
            cfg.batch_size = 8;
            cfg.seed = 11;
            cfg.micro_batch = Some(3);
            TimeDrl::new(cfg)
        };
        let windows = structured_windows(12, 32, 6);
        let run = |threads: usize| {
            testkit::pool::with_threads(threads, || {
                let m = make();
                let report = pretrain(&m, &windows);
                let params: Vec<_> = m.parameters().iter().map(|p| p.to_array()).collect();
                (report.total, params)
            })
        };
        let (loss1, params1) = run(1);
        for threads in [2usize, 4] {
            let (loss_n, params_n) = run(threads);
            assert_eq!(loss1, loss_n, "loss history diverged at {threads} threads");
            assert_eq!(params1, params_n, "parameters diverged at {threads} threads");
        }
    }

    #[test]
    fn gather_rows_layout() {
        let x = NdArray::from_fn(&[3, 2, 2], |i| i as f32);
        let b = gather_rows(&x, &[2, 0]);
        assert_eq!(b.shape(), &[2, 2, 2]);
        assert_eq!(b.at(&[0, 0, 0]), 8.0);
        assert_eq!(b.at(&[1, 0, 0]), 0.0);
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use crate::config::TimeDrlConfig;

    fn windows(n: usize, seed: u64) -> NdArray {
        let mut rng = Prng::new(seed);
        NdArray::from_fn(&[n, 32, 1], |flat| {
            ((flat % 32) as f32 * 0.4).sin() + rng.normal_with(0.0, 0.1)
        })
    }

    #[test]
    fn validation_loss_is_tracked_and_decreases() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 4;
        let model = crate::model::TimeDrl::new(cfg);
        let report = pretrain_with_validation(&model, &windows(48, 0), &windows(16, 1));
        assert_eq!(report.validation.len(), 4);
        assert!(report.validation.last().unwrap() < &report.validation[0]);
        assert!(report.best_validation_epoch().is_some());
    }

    #[test]
    fn plain_pretrain_has_no_validation_series() {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.epochs = 1;
        let model = crate::model::TimeDrl::new(cfg);
        let report = pretrain(&model, &windows(16, 2));
        assert!(report.validation.is_empty());
        assert!(report.best_validation_epoch().is_none());
    }
}
