//! Instance-embedding extraction strategies (Table VII ablation).

use timedrl_tensor::Var;

/// How to derive the instance-level embedding `z_i` from the encoder
/// output `z ∈ [B, 1+T_p, D]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pooling {
    /// The dedicated `[CLS]` token (position 0) — TimeDRL's choice,
    /// disentangled from the timestamp-level embeddings.
    Cls,
    /// The last timestamp-level embedding.
    Last,
    /// Global average pooling over timestamp-level embeddings.
    Gap,
    /// Flatten all timestamp-level embeddings into one long vector.
    All,
}

impl Pooling {
    /// All four rows of Table VII, `[CLS]` first.
    pub const ALL: [Pooling; 4] = [Pooling::Cls, Pooling::Last, Pooling::Gap, Pooling::All];

    /// The row label used in Table VII.
    pub fn name(&self) -> &'static str {
        match self {
            Pooling::Cls => "[CLS] (Ours)",
            Pooling::Last => "Last",
            Pooling::Gap => "GAP",
            Pooling::All => "All",
        }
    }

    /// Extracts `z_i` from the full token sequence `z ∈ [B, 1+T_p, D]`.
    ///
    /// Output is `[B, D]` for `Cls`/`Last`/`Gap` and `[B, T_p·D]` for
    /// `All`.
    pub fn extract(&self, z: &Var) -> Var {
        let shape = z.shape();
        assert_eq!(shape.len(), 3, "pooling expects [B, 1+Tp, D]");
        let (b, tokens, d) = (shape[0], shape[1], shape[2]);
        let t_p = tokens - 1;
        match self {
            Pooling::Cls => z.slice(1, 0, 1).reshape(&[b, d]),
            Pooling::Last => z.slice(1, tokens - 1, 1).reshape(&[b, d]),
            Pooling::Gap => z.slice(1, 1, t_p).mean_axis(1, false),
            Pooling::All => z.slice(1, 1, t_p).reshape(&[b, t_p * d]),
        }
    }

    /// Instance-embedding width for a given token width `d` and patch
    /// count `t_p`.
    pub fn output_dim(&self, d: usize, t_p: usize) -> usize {
        match self {
            Pooling::All => t_p * d,
            _ => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_tensor::NdArray;

    fn token_seq() -> Var {
        // z[b, t, d] = 100 b + 10 t + d, for B=2, tokens=4 (CLS + 3), D=2.
        Var::constant(NdArray::from_fn(&[2, 4, 2], |flat| {
            let b = flat / 8;
            let t = (flat % 8) / 2;
            let d = flat % 2;
            (100 * b + 10 * t + d) as f32
        }))
    }

    #[test]
    fn cls_takes_position_zero() {
        let z_i = Pooling::Cls.extract(&token_seq()).to_array();
        assert_eq!(z_i.shape(), &[2, 2]);
        assert_eq!(z_i.data(), &[0.0, 1.0, 100.0, 101.0]);
    }

    #[test]
    fn last_takes_final_token() {
        let z_i = Pooling::Last.extract(&token_seq()).to_array();
        assert_eq!(z_i.data(), &[30.0, 31.0, 130.0, 131.0]);
    }

    #[test]
    fn gap_averages_timestamp_tokens_only() {
        let z_i = Pooling::Gap.extract(&token_seq()).to_array();
        // Mean over tokens 1..4: (10+20+30)/3 = 20 for d=0 of batch 0.
        assert_eq!(z_i.data(), &[20.0, 21.0, 120.0, 121.0]);
    }

    #[test]
    fn all_flattens_timestamp_tokens() {
        let z_i = Pooling::All.extract(&token_seq()).to_array();
        assert_eq!(z_i.shape(), &[2, 6]);
        assert_eq!(&z_i.data()[..6], &[10.0, 11.0, 20.0, 21.0, 30.0, 31.0]);
    }

    #[test]
    fn output_dims() {
        assert_eq!(Pooling::Cls.output_dim(32, 8), 32);
        assert_eq!(Pooling::All.output_dim(32, 8), 256);
    }
}
