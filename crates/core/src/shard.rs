//! Multi-process sharded pre-training (DESIGN.md §16).
//!
//! `N` worker *processes* pretrain one model on a [`ShardedDataset`],
//! exchanging state exclusively through atomic checkpoint files in a
//! shared run directory — no sockets, no shared memory, no locks. The
//! result is **byte-identical to a single-process run** at any worker
//! count, lifting the thread-invariance proof of the micro-batch path
//! (`trainer.rs`) across real process boundaries.
//!
//! # Protocol
//!
//! Shard `j` is owned by worker `j % n_workers`. Per optimizer step `s`:
//!
//! 1. every worker waits for `params_{s:06}.tdrl` (the coordinator —
//!    worker 0 — writes `params_000000` from the freshly seeded model);
//! 2. each worker computes, for every shard it owns, the gradient of the
//!    pretext loss on that shard's step-`s` mini-batch, on a throwaway
//!    model replica built from the parameter snapshot
//!    ([`crate::trainer`]'s `replica_gradient`), and atomically writes
//!    `grad_{s:06}_{j:04}.tdrl` (`KIND_SHARD_GRAD`);
//! 3. the coordinator waits for all `S` gradient files, reduces them **in
//!    ascending shard order** with weights `count_j / Σ count`, applies
//!    one AdamW step (NaN-guarded, clipped at 5.0 like the in-process
//!    paths), and writes `params_{s+1:06}.tdrl`.
//!
//! # Why worker count cannot change the bytes
//!
//! Each shard's gradient is a pure function of `(params_s, shard data,
//! seeds mixed from (cfg.seed, epoch/step, shard index))` — never of which
//! process computed it, when, or how many peers exist. f32 arrays
//! round-trip bit-exactly through the container format, and the reduction
//! always runs on the coordinator in fixed ascending-`j` order, so the
//! floating-point accumulation order is frozen. `n_workers` only decides
//! who *produces* each file, not what it contains.
//!
//! # Crash safety
//!
//! All writes are atomic (temp + fsync + rename), so a file either exists
//! complete or not at all; because contents are deterministic, a rewrite
//! after a crash is byte-identical and *re-running any worker is always
//! safe*. The coordinator snapshots a full `TrainingState` to
//! `coord_state.tdrl` at every epoch boundary and replays the current
//! epoch from the on-disk gradient files on restart; a non-coordinator
//! resumes from the newest `params_*` file (the coordinator's progress
//! pointer). A worker that waits longer than the plan's timeout for a
//! peer's file fails with [`TrainError::ShardTimeout`] instead of hanging
//! forever.

use crate::checkpoint::{load_training_state, save_training_state, TrainingState};
use crate::config::TimeDrlConfig;
use crate::error::TrainError;
use crate::model::TimeDrl;
use crate::pretext::PretextBreakdown;
use crate::trainer::{mix_seed, replica_gradient, PretrainReport};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;
use timedrl_data::{BatchIndices, ShardedDataset};
use timedrl_nn::{clip_grad_norm, AdamW, Module, Optimizer};
use timedrl_tensor::serialize::{
    decode_arrays, encode_arrays, read_file, write_file_atomic, ByteReader, KIND_ARRAYS,
    KIND_SHARD_GRAD,
};
use timedrl_tensor::{NdArray, Prng};

/// Seed-mixing domains for the sharded path: per-(epoch, shard) batch
/// order, per-(step, shard) dropout views and augmentation. Distinct from
/// the `0x5eed_*` constants of the in-process paths, so a sharded run is a
/// different (equally valid) randomness stream than `pretrain` on the
/// same seed.
const DOMAIN_ORDER: u64 = 0x5a4d_0001;
const DOMAIN_CTX: u64 = 0x5a4d_0002;
const DOMAIN_AUG: u64 = 0x5a4d_0003;

/// Placement and pacing of one worker in a sharded pre-training run.
#[derive(Debug, Clone)]
pub struct ShardTrainPlan {
    /// Directory of `shard_*.tdrl` files (one split; see
    /// [`timedrl_data::ShardWriter`]).
    pub shard_dir: PathBuf,
    /// Shared run directory for parameter/gradient exchange. Created if
    /// absent; must be the same filesystem path for every worker.
    pub run_dir: PathBuf,
    /// Total worker processes. Shard `j` belongs to worker
    /// `j % n_workers`.
    pub n_workers: usize,
    /// This process's worker index, `0..n_workers`. Worker 0 coordinates:
    /// it reduces gradients, steps the optimizer, and publishes parameter
    /// snapshots.
    pub worker: usize,
    /// Stride of the sliding-window extraction over the sharded series.
    pub stride: usize,
    /// Poll interval while waiting for a peer's file.
    pub poll_ms: u64,
    /// Give up (with [`TrainError::ShardTimeout`]) after waiting this long
    /// for a single file.
    pub timeout_ms: u64,
}

impl ShardTrainPlan {
    /// A single-worker plan with default pacing (2 ms polls, 120 s
    /// timeout); adjust the fields for multi-worker runs.
    pub fn new(shard_dir: impl Into<PathBuf>, run_dir: impl Into<PathBuf>) -> Self {
        Self {
            shard_dir: shard_dir.into(),
            run_dir: run_dir.into(),
            n_workers: 1,
            worker: 0,
            stride: 1,
            poll_ms: 2,
            timeout_ms: 120_000,
        }
    }

    fn check(&self) -> Result<(), TrainError> {
        if self.n_workers == 0 {
            return Err(TrainError::InvalidConfig("n_workers must be positive".into()));
        }
        if self.worker >= self.n_workers {
            return Err(TrainError::InvalidConfig(format!(
                "worker index {} out of range for {} workers",
                self.worker, self.n_workers
            )));
        }
        if self.stride == 0 {
            return Err(TrainError::InvalidConfig("stride must be positive".into()));
        }
        if self.poll_ms == 0 {
            return Err(TrainError::InvalidConfig("poll_ms must be positive".into()));
        }
        Ok(())
    }

    fn params_path(&self, step: u64) -> PathBuf {
        self.run_dir.join(format!("params_{step:06}.tdrl"))
    }

    fn grad_path(&self, step: u64, shard: usize) -> PathBuf {
        self.run_dir.join(format!("grad_{step:06}_{shard:04}.tdrl"))
    }

    fn coord_state_path(&self) -> PathBuf {
        self.run_dir.join("coord_state.tdrl")
    }

    fn final_model_path(&self) -> PathBuf {
        self.run_dir.join("model_final.tdrl")
    }

    fn done_path(&self) -> PathBuf {
        self.run_dir.join("done")
    }

    /// Polls until `path` exists (any worker may still be writing peers'
    /// files, hence polling rather than notification — it keeps the
    /// protocol free of every IPC primitive except the filesystem).
    fn wait_for(&self, path: &Path) -> Result<(), TrainError> {
        let mut waited = 0u64;
        while !path.exists() {
            if waited >= self.timeout_ms {
                return Err(TrainError::ShardTimeout {
                    waiting_for: path.to_path_buf(),
                    waited_ms: waited,
                });
            }
            std::thread::sleep(Duration::from_millis(self.poll_ms));
            waited += self.poll_ms;
        }
        Ok(())
    }
}

/// Everything derivable, identically in every process, from the dataset
/// geometry and the config: shard window counts and the step grid.
struct Schedule {
    /// Windows owned by each shard — counts only. The window tensors are
    /// materialized per step, per owned shard
    /// ([`ShardedDataset::shard_window_batch`]) and dropped after the
    /// gradient is written, so a worker's resident data stays one shard
    /// slab plus one mini-batch regardless of the series length — the
    /// out-of-core bound the data layer promises (DESIGN.md §16).
    shard_counts: Vec<usize>,
    /// `ceil(max windows per shard / batch_size)` — every shard advances
    /// through the same number of steps per epoch; shards with fewer
    /// batches contribute empty (count 0) gradients to the tail steps.
    steps_per_epoch: u64,
    total_steps: u64,
}

impl Schedule {
    fn build(ds: &ShardedDataset, cfg: &TimeDrlConfig, plan: &ShardTrainPlan) -> Result<Self, TrainError> {
        if ds.channels() != cfg.n_features {
            return Err(TrainError::InvalidConfig(format!(
                "sharded series has {} channels, model expects n_features {}; apply \
                 channel-independence before sharding",
                ds.channels(),
                cfg.n_features
            )));
        }
        let shard_counts: Vec<usize> = (0..ds.num_shards())
            .map(|j| ds.shard_window_count(j, cfg.input_len, 0, plan.stride))
            .collect();
        let max_count = shard_counts.iter().copied().max().unwrap_or(0);
        if max_count == 0 {
            return Err(TrainError::EmptyTrainingSet);
        }
        let steps_per_epoch = max_count.div_ceil(cfg.batch_size) as u64;
        Ok(Self {
            shard_counts,
            steps_per_epoch,
            total_steps: steps_per_epoch * cfg.epochs as u64,
        })
    }

    /// The step-`s` mini-batch (window indices into shard `j`'s windows),
    /// derived purely from `(seed, epoch, shard)` — identical in every
    /// process that computes it.
    fn batch(&self, cfg: &TimeDrlConfig, s: u64, j: usize) -> Result<Vec<usize>, TrainError> {
        let n = self.shard_counts[j];
        if n == 0 {
            return Ok(Vec::new());
        }
        let epoch = s / self.steps_per_epoch;
        let b = (s % self.steps_per_epoch) as usize;
        let mut rng = Prng::new(mix_seed(cfg.seed ^ DOMAIN_ORDER, epoch, j as u64));
        BatchIndices::new(n, cfg.batch_size, Some(&mut rng))
            .map_err(|e| TrainError::InvalidConfig(e.to_string()))?
            .nth(b)
            .map_or_else(|| Ok(Vec::new()), Ok)
    }
}

fn write_params(path: &Path, params: &[NdArray]) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&KIND_ARRAYS.to_le_bytes());
    let refs: Vec<&NdArray> = params.iter().collect();
    encode_arrays(&mut payload, &refs);
    write_file_atomic(path, &payload)
}

fn read_params(path: &Path) -> io::Result<Vec<NdArray>> {
    let payload = read_file(path, KIND_ARRAYS)?;
    let mut r = ByteReader::new(&payload);
    let arrays = decode_arrays(&mut r)?;
    r.finish()?;
    Ok(arrays)
}

/// One shard's gradient contribution to one step, as exchanged on disk.
struct GradFile {
    count: u64,
    breakdown: PretextBreakdown,
    grads: Vec<NdArray>,
}

fn write_grad(path: &Path, shard: u64, step: u64, g: &GradFile) -> io::Result<()> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&KIND_SHARD_GRAD.to_le_bytes());
    for word in [shard, step, g.count] {
        payload.extend_from_slice(&word.to_le_bytes());
    }
    for v in [g.breakdown.total, g.breakdown.predictive, g.breakdown.contrastive] {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let refs: Vec<&NdArray> = g.grads.iter().collect();
    encode_arrays(&mut payload, &refs);
    write_file_atomic(path, &payload)
}

fn read_grad(path: &Path, expect_shard: u64, expect_step: u64) -> Result<GradFile, TrainError> {
    let payload = read_file(path, KIND_SHARD_GRAD)?;
    let mut r = ByteReader::new(&payload);
    let (shard, step, count) = ((r.u64())?, (r.u64())?, (r.u64())?);
    if shard != expect_shard || step != expect_step {
        return Err(TrainError::ShardProtocol(format!(
            "{} is stamped shard {shard} step {step}, expected shard {expect_shard} \
             step {expect_step}",
            path.display()
        )));
    }
    let vals = r.f32_vec(3).map_err(TrainError::Checkpoint)?;
    let grads = decode_arrays(&mut r)?;
    r.finish()?;
    if count == 0 && !grads.is_empty() {
        return Err(TrainError::ShardProtocol(format!(
            "{} reports 0 samples but carries {} gradient arrays",
            path.display(),
            grads.len()
        )));
    }
    Ok(GradFile {
        count,
        breakdown: PretextBreakdown { total: vals[0], predictive: vals[1], contrastive: vals[2] },
        grads,
    })
}

/// Runs this process's role in a sharded pre-training run; see the module
/// docs for the protocol. Blocks until the run completes (or a peer goes
/// missing past the timeout). Only the coordinator's return value carries
/// the loss history; other workers return an empty report.
///
/// # Errors
/// [`TrainError`] on an invalid plan/config, a corrupt or inconsistent
/// shard set, a non-finite loss, a protocol violation in the run
/// directory, or a timed-out wait.
pub fn run_shard_worker(cfg: &TimeDrlConfig, plan: &ShardTrainPlan) -> Result<PretrainReport, TrainError> {
    run_shard_worker_with(cfg, plan, |_| {})
}

/// [`run_shard_worker`] with a hook invoked at the start of every
/// optimizer step this worker participates in — the crash-harness seam
/// (`shard_probe` aborts the process mid-run from it) and a progress
/// callback for long runs.
pub fn run_shard_worker_with(
    cfg: &TimeDrlConfig,
    plan: &ShardTrainPlan,
    mut on_step: impl FnMut(u64),
) -> Result<PretrainReport, TrainError> {
    plan.check()?;
    cfg.check().map_err(TrainError::InvalidConfig)?;
    if cfg.epochs == 0 {
        return Err(TrainError::InvalidConfig("epochs is 0 — no training planned".into()));
    }
    let ds = ShardedDataset::open(&plan.shard_dir)?;
    let schedule = Schedule::build(&ds, cfg, plan)?;
    std::fs::create_dir_all(&plan.run_dir).map_err(TrainError::Checkpoint)?;

    if plan.worker == 0 {
        run_coordinator(cfg, plan, &ds, &schedule, &mut on_step)
    } else {
        run_follower(cfg, plan, &ds, &schedule, &mut on_step)?;
        Ok(PretrainReport::default())
    }
}

/// Gradients this worker owes for step `s`: one file per owned shard,
/// skipped when the file already exists (atomic rename means an existing
/// file is complete, and determinism means a rewrite would be
/// byte-identical anyway).
fn produce_owned_grads(
    cfg: &TimeDrlConfig,
    plan: &ShardTrainPlan,
    ds: &ShardedDataset,
    schedule: &Schedule,
    s: u64,
    snapshot: &[NdArray],
) -> Result<(), TrainError> {
    for j in (plan.worker..ds.num_shards()).step_by(plan.n_workers) {
        let path = plan.grad_path(s, j);
        if path.exists() {
            continue;
        }
        let idx = schedule.batch(cfg, s, j)?;
        let g = if idx.is_empty() {
            GradFile {
                count: 0,
                breakdown: PretextBreakdown { total: 0.0, predictive: 0.0, contrastive: 0.0 },
                grads: Vec::new(),
            }
        } else {
            // Materialize only this step's mini-batch (one shard slab
            // resident while gathering, dropped before the gradient is
            // computed) — the whole shard's window tensor never exists.
            let batch = ds.shard_window_batch(j, cfg.input_len, 0, plan.stride, &idx)?.inputs;
            let (grads, breakdown) = replica_gradient(
                cfg,
                snapshot,
                &batch,
                mix_seed(cfg.seed ^ DOMAIN_CTX, s, j as u64),
                mix_seed(cfg.seed ^ DOMAIN_AUG, s, j as u64),
            )
            .map_err(TrainError::Backward)?;
            GradFile { count: idx.len() as u64, breakdown, grads }
        };
        write_grad(&path, j as u64, s, &g).map_err(TrainError::Checkpoint)?;
    }
    Ok(())
}

/// A non-coordinating worker: follow the coordinator's `params_*`
/// progress pointer, contributing gradients for owned shards until the
/// `done` marker appears.
fn run_follower(
    cfg: &TimeDrlConfig,
    plan: &ShardTrainPlan,
    ds: &ShardedDataset,
    schedule: &Schedule,
    on_step: &mut impl FnMut(u64),
) -> Result<(), TrainError> {
    if plan.worker >= ds.num_shards() {
        return Ok(()); // more workers than shards: nothing owned
    }
    // Resume: the newest published snapshot is where the coordinator
    // needs contributions; everything earlier was already consumed (or
    // survives as byte-identical grad files).
    let mut s = (0..schedule.total_steps)
        .rev()
        .find(|&s| plan.params_path(s).exists())
        .unwrap_or(0);
    while s < schedule.total_steps {
        if plan.done_path().exists() {
            return Ok(());
        }
        on_step(s);
        let params = plan.params_path(s);
        // Poll for either the step's snapshot or the end of the run.
        let mut waited = 0u64;
        loop {
            if params.exists() || plan.done_path().exists() {
                break;
            }
            if waited >= plan.timeout_ms {
                return Err(TrainError::ShardTimeout { waiting_for: params, waited_ms: waited });
            }
            std::thread::sleep(Duration::from_millis(plan.poll_ms));
            waited += plan.poll_ms;
        }
        if !params.exists() {
            return Ok(()); // done appeared first
        }
        let snapshot = read_params(&params).map_err(TrainError::Checkpoint)?;
        produce_owned_grads(cfg, plan, ds, schedule, s, &snapshot)?;
        s += 1;
    }
    Ok(())
}

/// Worker 0: publish snapshots, contribute its own shards' gradients,
/// reduce everyone's, step the optimizer, snapshot at epoch boundaries.
fn run_coordinator(
    cfg: &TimeDrlConfig,
    plan: &ShardTrainPlan,
    ds: &ShardedDataset,
    schedule: &Schedule,
    on_step: &mut impl FnMut(u64),
) -> Result<PretrainReport, TrainError> {
    let model = TimeDrl::new(cfg.clone());
    let mut opt = AdamW::new(model.parameters(), cfg.lr, cfg.weight_decay);
    let mut report = PretrainReport::default();
    let mut start_step = 0u64;

    if plan.done_path().exists() {
        // A completed run: idempotently return its result.
        model.load(plan.final_model_path()).map_err(TrainError::Checkpoint)?;
        if let Ok(state) = load_training_state(plan.coord_state_path()) {
            report = state.report;
        }
        return Ok(report);
    }
    if plan.coord_state_path().exists() {
        let state = load_training_state(plan.coord_state_path())?;
        restore_coordinator(&model, &mut opt, cfg, &state)?;
        report = state.report;
        start_step = state.step;
    }
    // Publish (or byte-identically republish, after a crash) the snapshot
    // for the first step this run will execute.
    let mut params: Vec<NdArray> = model.parameters().iter().map(|p| p.to_array()).collect();
    write_params(&plan.params_path(start_step), &params).map_err(TrainError::Checkpoint)?;

    let spe = schedule.steps_per_epoch;
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    for s in start_step..schedule.total_steps {
        on_step(s);
        produce_owned_grads(cfg, plan, ds, schedule, s, &params)?;

        // Reduce in ascending shard order — the frozen accumulation order
        // that makes the result independent of worker count.
        let mut files = Vec::with_capacity(ds.num_shards());
        for j in 0..ds.num_shards() {
            let path = plan.grad_path(s, j);
            plan.wait_for(&path)?;
            files.push(read_grad(&path, j as u64, s)?);
        }
        let total: u64 = files.iter().map(|g| g.count).sum();
        if total == 0 {
            return Err(TrainError::ShardProtocol(format!(
                "step {s}: every shard reported an empty batch"
            )));
        }
        let mut reduced: Vec<NdArray> = params.iter().map(|p| NdArray::zeros(p.shape())).collect();
        let mut agg = PretextBreakdown { total: 0.0, predictive: 0.0, contrastive: 0.0 };
        for (j, g) in files.iter().enumerate() {
            if g.count == 0 {
                continue;
            }
            if g.grads.len() != reduced.len() {
                return Err(TrainError::ShardProtocol(format!(
                    "shard {j} step {s}: {} gradient arrays for {} parameters",
                    g.grads.len(),
                    reduced.len()
                )));
            }
            let w = g.count as f32 / total as f32;
            for (acc, grad) in reduced.iter_mut().zip(&g.grads) {
                for (a, &gv) in acc.data_mut().iter_mut().zip(grad.data()) {
                    *a += gv * w;
                }
            }
            agg.total += w * g.breakdown.total;
            agg.predictive += w * g.breakdown.predictive;
            agg.contrastive += w * g.breakdown.contrastive;
        }
        if !agg.total.is_finite() {
            return Err(TrainError::NonFiniteLoss {
                epoch: (s / spe) as usize,
                step: s,
                batch: (s % spe) as usize,
                loss: agg.total,
                last_checkpoint: plan
                    .coord_state_path()
                    .exists()
                    .then(|| plan.coord_state_path()),
            });
        }
        opt.zero_grad();
        for (p, g) in model.parameters().iter().zip(reduced) {
            p.try_backward_with(g).map_err(TrainError::Backward)?;
        }
        clip_grad_norm(opt.parameters(), 5.0);
        opt.step();
        sums.0 += agg.total as f64;
        sums.1 += agg.predictive as f64;
        sums.2 += agg.contrastive as f64;

        params = model.parameters().iter().map(|p| p.to_array()).collect();
        write_params(&plan.params_path(s + 1), &params).map_err(TrainError::Checkpoint)?;

        if (s + 1) % spe == 0 {
            let b = spe as f64;
            report.total.push((sums.0 / b) as f32);
            report.predictive.push((sums.1 / b) as f32);
            report.contrastive.push((sums.2 / b) as f32);
            sums = (0.0, 0.0, 0.0);
            let epoch_done = (s + 1) / spe;
            save_training_state(
                plan.coord_state_path(),
                &coordinator_state(&model, &opt, epoch_done, s + 1, &report),
            )?;
            collect_consumed_grads(plan, s + 1)?;
        }
    }
    model.save(plan.final_model_path()).map_err(TrainError::Checkpoint)?;
    // The `done` marker is the one file that is *not* rewritten on
    // resume, so it is plain content behind the same tmp+rename pattern.
    let tmp = plan.run_dir.join("done.tmp");
    std::fs::write(&tmp, b"done\n").map_err(TrainError::Checkpoint)?;
    std::fs::rename(&tmp, plan.done_path()).map_err(TrainError::Checkpoint)?;
    Ok(report)
}

/// The coordinator's epoch-boundary snapshot. The three RNG-state slots of
/// `TrainingState` are unused by the sharded path (all randomness is
/// re-derived from `(seed, epoch/step, shard)`), but the loader rejects
/// all-zero states, so fixed nonzero sentinels fill them.
fn coordinator_state(
    model: &TimeDrl,
    opt: &AdamW,
    next_epoch: u64,
    step: u64,
    report: &PretrainReport,
) -> TrainingState {
    TrainingState {
        params: model.parameters().iter().map(|p| p.to_array()).collect(),
        opt: opt.export_state(),
        next_epoch,
        step,
        epoch_rng: [1, 2, 3, 4],
        ctx_rng: [1, 2, 3, 4],
        aug_rng: [1, 2, 3, 4],
        report: report.clone(),
    }
}

fn restore_coordinator(
    model: &TimeDrl,
    opt: &mut AdamW,
    cfg: &TimeDrlConfig,
    state: &TrainingState,
) -> Result<(), TrainError> {
    let params = model.parameters();
    if state.params.len() != params.len() {
        return Err(TrainError::ResumeMismatch(format!(
            "coordinator state has {} parameters, model has {}",
            state.params.len(),
            params.len()
        )));
    }
    if state.next_epoch > cfg.epochs as u64 {
        return Err(TrainError::ResumeMismatch(format!(
            "coordinator state is at epoch {} of a {}-epoch plan",
            state.next_epoch, cfg.epochs
        )));
    }
    for (i, (p, a)) in params.iter().zip(&state.params).enumerate() {
        if p.shape() != a.shape() {
            return Err(TrainError::ResumeMismatch(format!(
                "parameter {i}: model shape {:?} vs coordinator state {:?}",
                p.shape(),
                a.shape()
            )));
        }
        p.set_value(a.clone());
    }
    opt.import_state(state.opt.clone()).map_err(TrainError::ResumeMismatch)?;
    Ok(())
}

/// Deletes the gradient files of fully consumed epochs so a long run's
/// directory stays bounded by one epoch of gradients (parameter
/// snapshots are kept: they are the followers' resume pointers). A
/// straggler that recomputes a collected gradient merely rewrites
/// identical bytes into a file nobody reads again.
fn collect_consumed_grads(plan: &ShardTrainPlan, next_step: u64) -> Result<(), TrainError> {
    for entry in std::fs::read_dir(&plan.run_dir).map_err(TrainError::Checkpoint)? {
        let entry = entry.map_err(TrainError::Checkpoint)?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("grad_") else { continue };
        // The step field is `{s:06}` but *widens* past six digits, so
        // parse up to the `_` separator, never a fixed-width slice.
        let Some(step_str) = rest.split('_').next() else { continue };
        if let Ok(step) = step_str.parse::<u64>() {
            if step < next_step {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use timedrl_data::ShardWriter;

    fn probe_cfg() -> TimeDrlConfig {
        let mut cfg = TimeDrlConfig::forecasting(32);
        cfg.d_model = 16;
        cfg.d_ff = 32;
        cfg.n_heads = 2;
        cfg.batch_size = 8;
        cfg.epochs = 2;
        cfg.seed = 21;
        cfg
    }

    fn series(t: usize) -> NdArray {
        NdArray::from_fn(&[t, 1], |i| (i as f32 * 0.4).sin() + (i as f32 * 0.05).cos())
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("timedrl_coreshard_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn plan_validation_is_typed() {
        let mut plan = ShardTrainPlan::new("/nonexistent", "/nonexistent");
        plan.n_workers = 2;
        plan.worker = 2;
        assert!(matches!(plan.check(), Err(TrainError::InvalidConfig(_))));
        plan.worker = 0;
        plan.stride = 0;
        assert!(matches!(plan.check(), Err(TrainError::InvalidConfig(_))));
    }

    #[test]
    fn schedule_batches_are_process_independent() {
        let dir = tmp("sched");
        ShardWriter::new(64).unwrap().write(&series(200), dir.join("shards")).unwrap();
        let ds = ShardedDataset::open(dir.join("shards")).unwrap();
        let cfg = probe_cfg();
        let mut plan = ShardTrainPlan::new(dir.join("shards"), dir.join("run"));
        plan.stride = 4;
        let sched = Schedule::build(&ds, &cfg, &plan).unwrap();
        // Recomputing any step's batch gives the same indices.
        for s in 0..sched.total_steps {
            for j in 0..ds.num_shards() {
                assert_eq!(
                    sched.batch(&cfg, s, j).unwrap(),
                    sched.batch(&cfg, s, j).unwrap()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_worker_run_trains_and_is_reproducible() {
        let dir = tmp("single");
        ShardWriter::new(64).unwrap().write(&series(200), dir.join("shards")).unwrap();
        let cfg = probe_cfg();
        let mut plan = ShardTrainPlan::new(dir.join("shards"), dir.join("run_a"));
        plan.stride = 4;
        let report = run_shard_worker(&cfg, &plan).unwrap();
        assert_eq!(report.total.len(), cfg.epochs);
        let mut plan_b = plan.clone();
        plan_b.run_dir = dir.join("run_b");
        let report_b = run_shard_worker(&cfg, &plan_b).unwrap();
        assert_eq!(report.total, report_b.total);
        let a = std::fs::read(dir.join("run_a/model_final.tdrl")).unwrap();
        let b = std::fs::read(dir.join("run_b/model_final.tdrl")).unwrap();
        assert_eq!(a, b, "two identical single-worker runs diverged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rerunning_a_finished_run_is_idempotent() {
        let dir = tmp("idem");
        ShardWriter::new(64).unwrap().write(&series(150), dir.join("shards")).unwrap();
        let cfg = probe_cfg();
        let mut plan = ShardTrainPlan::new(dir.join("shards"), dir.join("run"));
        plan.stride = 4;
        let first = run_shard_worker(&cfg, &plan).unwrap();
        let before = std::fs::read(dir.join("run/model_final.tdrl")).unwrap();
        let again = run_shard_worker(&cfg, &plan).unwrap();
        assert_eq!(first.total, again.total);
        let after = std::fs::read(dir.join("run/model_final.tdrl")).unwrap();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grad_collection_handles_steps_wider_than_six_digits() {
        let dir = tmp("gc_wide");
        let plan = ShardTrainPlan::new(dir.join("shards"), dir.clone());
        // `{s:06}` widens at one million steps; a fixed 6-char parse read
        // grad_1000000_* as step 100000 and deleted it before use.
        std::fs::write(plan.grad_path(999_999, 0), b"x").unwrap();
        std::fs::write(plan.grad_path(1_000_000, 0), b"x").unwrap();
        collect_consumed_grads(&plan, 1_000_000).unwrap();
        assert!(!plan.grad_path(999_999, 0).exists(), "consumed grad kept");
        assert!(plan.grad_path(1_000_000, 0).exists(), "live grad deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn channel_mismatch_is_an_invalid_config() {
        let dir = tmp("chan");
        let s = NdArray::from_fn(&[80, 3], |i| i as f32 * 0.01);
        ShardWriter::new(32).unwrap().write(&s, dir.join("shards")).unwrap();
        let cfg = probe_cfg(); // n_features == 1
        let plan = ShardTrainPlan::new(dir.join("shards"), dir.join("run"));
        let err = run_shard_worker(&cfg, &plan).unwrap_err();
        assert!(matches!(err, TrainError::InvalidConfig(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
