//! Configuration for the TimeDRL framework.

use crate::pooling::Pooling;
use std::path::PathBuf;
use timedrl_data::{Augmentation, PatchConfig};

/// Backbone encoder architecture (Table VIII ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// Bidirectional Transformer encoder — TimeDRL's choice.
    TransformerEncoder,
    /// Transformer with masked (causal) self-attention.
    TransformerDecoder,
    /// 1-D ResNet-style convolutional encoder.
    ResNet,
    /// Temporal Convolutional Network (dilated causal convolutions).
    Tcn,
    /// Uni-directional LSTM.
    Lstm,
    /// Bi-directional LSTM.
    BiLstm,
}

impl EncoderKind {
    /// All six rows of Table VIII, TimeDRL's choice first.
    pub const ALL: [EncoderKind; 6] = [
        EncoderKind::TransformerEncoder,
        EncoderKind::TransformerDecoder,
        EncoderKind::ResNet,
        EncoderKind::Tcn,
        EncoderKind::Lstm,
        EncoderKind::BiLstm,
    ];

    /// The row label used in Table VIII.
    pub fn name(&self) -> &'static str {
        match self {
            EncoderKind::TransformerEncoder => "Transformer Encoder (Ours)",
            EncoderKind::TransformerDecoder => "Transformer Decoder",
            EncoderKind::ResNet => "ResNet",
            EncoderKind::Tcn => "TCN",
            EncoderKind::Lstm => "LSTM",
            EncoderKind::BiLstm => "Bi-LSTM",
        }
    }
}

/// Full configuration of a TimeDRL model and its pre-training run.
#[derive(Debug, Clone)]
pub struct TimeDrlConfig {
    /// Input window length `T` (timesteps per sample).
    pub input_len: usize,
    /// Feature count `C` as seen by the model (1 under
    /// channel-independence).
    pub n_features: usize,
    /// Patching parameters (Eq. 1).
    pub patch: PatchConfig,
    /// Transformer latent width `D`.
    pub d_model: usize,
    /// Attention heads.
    pub n_heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Number of encoder blocks `L`.
    pub n_layers: usize,
    /// Dropout probability — the randomness source for the two contrastive
    /// views (Section IV-C).
    pub dropout: f32,
    /// Backbone architecture.
    pub encoder: EncoderKind,
    /// λ weighting the instance-contrastive loss (Eq. 19).
    pub lambda: f32,
    /// Apply the stop-gradient operation in Eqs. 16–17 (Table IX toggles
    /// this off).
    pub stop_gradient: bool,
    /// Data augmentation applied during pre-training (Table VI; TimeDRL
    /// uses `None`).
    pub augmentation: Augmentation,
    /// Instance-embedding pooling strategy (Table VII; TimeDRL uses
    /// `[CLS]`).
    pub pooling: Pooling,
    /// Treat each channel as an independent univariate series through
    /// shared weights (on for forecasting, off for classification —
    /// Section V.4).
    pub channel_independence: bool,
    /// AdamW learning rate.
    pub lr: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
    /// Pre-training batch size.
    pub batch_size: usize,
    /// Pre-training epochs.
    pub epochs: usize,
    /// Master seed for weights, dropout, and batch order.
    pub seed: u64,
    /// Data-parallel micro-batch size for pre-training. `None` (the
    /// default) keeps the serial whole-batch gradient path. `Some(m)`
    /// splits every batch into micro-batches of `m` samples that run on
    /// independent model replicas across the `testkit::pool` workers, with
    /// an ordered gradient reduction — the result is bit-identical at any
    /// `TIMEDRL_THREADS` setting, but is a *different* (equally valid)
    /// dropout/augmentation stream than the whole-batch path.
    pub micro_batch: Option<usize>,
    /// Write a full training-state snapshot every this many epochs (see
    /// DESIGN.md §11). Requires [`TimeDrlConfig::checkpoint_path`]. `None`
    /// disables periodic checkpointing.
    pub checkpoint_every: Option<usize>,
    /// Destination of the periodic training-state snapshot. Writes are
    /// atomic (temp file + fsync + rename), so a crash mid-write leaves
    /// the previous snapshot intact.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume pre-training from a training-state snapshot written by a
    /// previous run with this same configuration. The resumed run replays
    /// the remaining epochs bit-exactly: its final checkpoint is
    /// byte-identical to an uninterrupted run's, at any `TIMEDRL_THREADS`.
    pub resume_from: Option<PathBuf>,
}

impl TimeDrlConfig {
    /// A compact forecasting configuration (channel-independent), sized for
    /// CPU-scale experiments.
    pub fn forecasting(input_len: usize) -> Self {
        Self {
            input_len,
            n_features: 1,
            patch: PatchConfig::non_overlapping(8),
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            n_layers: 2,
            dropout: 0.1,
            encoder: EncoderKind::TransformerEncoder,
            lambda: 1.0,
            stop_gradient: true,
            augmentation: Augmentation::None,
            pooling: Pooling::Cls,
            channel_independence: true,
            lr: 1e-3,
            weight_decay: 1e-4,
            batch_size: 32,
            epochs: 10,
            seed: 0,
            micro_batch: None,
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
        }
    }

    /// A compact classification configuration (channel-mixing).
    pub fn classification(input_len: usize, n_features: usize) -> Self {
        let patch_len = pick_patch_len(input_len);
        Self {
            input_len,
            n_features,
            patch: PatchConfig::non_overlapping(patch_len),
            d_model: 32,
            n_heads: 4,
            d_ff: 64,
            n_layers: 2,
            dropout: 0.1,
            encoder: EncoderKind::TransformerEncoder,
            lambda: 1.0,
            stop_gradient: true,
            augmentation: Augmentation::None,
            pooling: Pooling::Cls,
            channel_independence: false,
            lr: 1e-3,
            weight_decay: 1e-4,
            batch_size: 32,
            epochs: 10,
            seed: 0,
            micro_batch: None,
            checkpoint_every: None,
            checkpoint_path: None,
            resume_from: None,
        }
    }

    /// Number of patch tokens `T_p` for this configuration.
    pub fn num_patches(&self) -> usize {
        self.patch.num_patches(self.input_len)
    }

    /// Patched token width `C · P`.
    pub fn token_width(&self) -> usize {
        self.n_features * self.patch.patch_len
    }

    /// Checks internal consistency, returning a description of the first
    /// problem found. This is the total (non-panicking) form used by the
    /// training loop, which surfaces it as `TrainError::InvalidConfig`.
    ///
    /// `epochs == 0` is deliberately *not* rejected here: a zero-epoch
    /// configuration builds a perfectly usable model for inference-only
    /// workloads; `pretrain` is where an empty training plan is an error.
    pub fn check(&self) -> Result<(), String> {
        if self.input_len < self.patch.patch_len {
            return Err("window shorter than a patch".into());
        }
        if self.n_heads == 0 || self.d_model % self.n_heads != 0 {
            return Err("d_model must divide by n_heads".into());
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err("dropout in [0,1)".into());
        }
        if self.lambda < 0.0 {
            return Err("lambda must be non-negative".into());
        }
        if self.batch_size == 0 {
            return Err("degenerate training plan: batch_size is 0".into());
        }
        if self.micro_batch == Some(0) {
            return Err("micro_batch must be positive when set".into());
        }
        if self.channel_independence && self.n_features != 1 {
            return Err(format!(
                "channel-independence implies n_features = 1, got {}",
                self.n_features
            ));
        }
        if self.checkpoint_every == Some(0) {
            return Err("checkpoint_every must be positive when set".into());
        }
        if self.checkpoint_every.is_some() && self.checkpoint_path.is_none() {
            return Err("checkpoint_every set without a checkpoint_path".into());
        }
        Ok(())
    }

    /// Validates internal consistency, panicking with a clear message on
    /// misconfiguration (the constructor-time form of
    /// [`TimeDrlConfig::check`]).
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }
}

/// Picks a patch length that divides short classification windows evenly.
fn pick_patch_len(input_len: usize) -> usize {
    for p in [8usize, 4, 2] {
        if input_len >= p * 2 {
            return p;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forecasting_defaults_validate() {
        let cfg = TimeDrlConfig::forecasting(64);
        cfg.validate();
        assert_eq!(cfg.num_patches(), 8);
        assert_eq!(cfg.token_width(), 8);
    }

    #[test]
    fn classification_defaults_validate() {
        let cfg = TimeDrlConfig::classification(128, 9);
        cfg.validate();
        assert!(!cfg.channel_independence);
        assert_eq!(cfg.token_width(), 9 * cfg.patch.patch_len);
    }

    #[test]
    fn short_windows_get_small_patches() {
        // PenDigits-style length-8 samples.
        let cfg = TimeDrlConfig::classification(8, 2);
        cfg.validate();
        assert!(cfg.num_patches() >= 2, "need at least 2 tokens for context");
    }

    #[test]
    #[should_panic(expected = "window shorter than a patch")]
    fn invalid_patch_caught() {
        let mut cfg = TimeDrlConfig::forecasting(64);
        cfg.input_len = 4;
        cfg.validate();
    }

    #[test]
    fn check_is_total_and_names_the_problem() {
        let mut cfg = TimeDrlConfig::forecasting(64);
        assert!(cfg.check().is_ok());
        cfg.batch_size = 0;
        assert!(cfg.check().unwrap_err().contains("batch_size"));
        cfg.batch_size = 32;
        cfg.checkpoint_every = Some(0);
        assert!(cfg.check().unwrap_err().contains("checkpoint_every"));
        cfg.checkpoint_every = Some(2);
        assert!(cfg.check().unwrap_err().contains("checkpoint_path"));
        cfg.checkpoint_path = Some(std::path::PathBuf::from("/tmp/state.tdrl"));
        assert!(cfg.check().is_ok());
    }

    #[test]
    fn zero_epochs_is_a_valid_inference_config() {
        let mut cfg = TimeDrlConfig::forecasting(64);
        cfg.epochs = 0;
        cfg.check().expect("zero-epoch configs build inference-only models");
    }

    #[test]
    fn encoder_names_cover_table_viii() {
        assert_eq!(EncoderKind::ALL.len(), 6);
        assert!(EncoderKind::ALL[0].name().contains("Ours"));
    }
}
