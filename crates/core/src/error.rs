//! Typed training failures.
//!
//! The pre-training loop used to fail by panicking (`assert!`, raw slice
//! bounds, `expect`), which aborts a long run without a diagnosis and —
//! worse — without telling the operator whether the last on-disk
//! checkpoint is still good. Every failure mode now surfaces as a
//! [`TrainError`] carrying enough context to act on: the offending epoch
//! and optimizer step for a non-finite loss, the last known-good
//! checkpoint path when one exists, and the underlying I/O error for
//! checkpoint failures.

use std::fmt;
use std::io;
use std::path::PathBuf;

use timedrl_tensor::TensorError;

/// A failure in the pre-training loop or its checkpoint machinery.
#[derive(Debug)]
pub enum TrainError {
    /// The configuration is internally inconsistent (same checks as
    /// `TimeDrlConfig::validate`, surfaced as a value instead of a panic).
    InvalidConfig(String),
    /// The training tensor has the wrong rank for `[N, T, C]` windows.
    BadWindows {
        /// What the trainer expected.
        expected: &'static str,
        /// The shape actually supplied.
        got: Vec<usize>,
    },
    /// The training set has zero windows — there is nothing to fit.
    EmptyTrainingSet,
    /// The joint loss became NaN/±inf. The optimizer step was aborted
    /// *before* applying the poisoned gradients, so in-memory parameters
    /// are the pre-step values and any checkpoint on disk is untouched.
    NonFiniteLoss {
        /// Epoch (0-based) of the offending batch.
        epoch: usize,
        /// Global optimizer step (0-based) of the offending batch.
        step: u64,
        /// Batch index within the epoch (0-based).
        batch: usize,
        /// The non-finite loss value (NaN or ±inf).
        loss: f32,
        /// The most recent training-state snapshot written by this run,
        /// if checkpointing was enabled — a loadable last-good state.
        last_checkpoint: Option<PathBuf>,
    },
    /// A backward rule failed (e.g. a matmul gradient hit incompatible
    /// shapes). Surfaced as a value instead of panicking mid-backward; the
    /// optimizer step for the offending batch never ran, so parameters
    /// hold their pre-step values.
    Backward(TensorError),
    /// Reading or writing a checkpoint failed (I/O, corruption, or a
    /// checksum mismatch).
    Checkpoint(io::Error),
    /// A resume checkpoint is well-formed but belongs to a different
    /// model or training plan (parameter/shape/epoch mismatch).
    ResumeMismatch(String),
    /// The shard layer failed: a corrupt/inconsistent shard set or a
    /// filesystem problem while streaming it.
    Shard(timedrl_data::ShardError),
    /// A sharded-pretraining worker gave up waiting for a peer's file
    /// (parameter snapshot or gradient contribution) — a peer process
    /// likely died without being restarted.
    ShardTimeout {
        /// The file the worker was polling for.
        waiting_for: PathBuf,
        /// How long it waited before giving up.
        waited_ms: u64,
    },
    /// A file in the sharded-pretraining run directory disagrees with the
    /// protocol (wrong shard/step stamp, wrong array count, foreign run).
    ShardProtocol(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidConfig(msg) => write!(f, "invalid training config: {msg}"),
            TrainError::BadWindows { expected, got } => {
                write!(f, "bad training windows: expected {expected}, got shape {got:?}")
            }
            TrainError::EmptyTrainingSet => write!(f, "training set contains no windows"),
            TrainError::NonFiniteLoss { epoch, step, batch, loss, last_checkpoint } => {
                write!(
                    f,
                    "non-finite loss {loss} at epoch {epoch}, step {step} (batch {batch}); \
                     optimizer step aborted before applying gradients"
                )?;
                match last_checkpoint {
                    Some(p) => write!(f, "; last good checkpoint: {}", p.display()),
                    None => write!(f, "; no checkpoint was written this run"),
                }
            }
            TrainError::Backward(e) => {
                write!(f, "backward pass failed: {e}; optimizer step not applied")
            }
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::ResumeMismatch(msg) => write!(f, "resume mismatch: {msg}"),
            TrainError::Shard(e) => write!(f, "shard error: {e}"),
            TrainError::ShardTimeout { waiting_for, waited_ms } => write!(
                f,
                "timed out after {waited_ms} ms waiting for {} — a peer worker \
                 likely died; restart it to resume",
                waiting_for.display()
            ),
            TrainError::ShardProtocol(msg) => write!(f, "shard protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Backward(e) => Some(e),
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TrainError {
    fn from(e: io::Error) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<TensorError> for TrainError {
    fn from(e: TensorError) -> Self {
        TrainError::Backward(e)
    }
}

impl From<timedrl_data::ShardError> for TrainError {
    fn from(e: timedrl_data::ShardError) -> Self {
        TrainError::Shard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_step_and_checkpoint() {
        let e = TrainError::NonFiniteLoss {
            epoch: 3,
            step: 97,
            batch: 5,
            loss: f32::NAN,
            last_checkpoint: Some(PathBuf::from("/tmp/run/state.tdrl")),
        };
        let msg = e.to_string();
        assert!(msg.contains("epoch 3"), "{msg}");
        assert!(msg.contains("step 97"), "{msg}");
        assert!(msg.contains("batch 5"), "{msg}");
        assert!(msg.contains("state.tdrl"), "{msg}");
    }

    #[test]
    fn io_errors_convert() {
        let e: TrainError = io::Error::new(io::ErrorKind::InvalidData, "bad crc").into();
        assert!(matches!(e, TrainError::Checkpoint(_)));
        assert!(e.to_string().contains("bad crc"));
    }
}
