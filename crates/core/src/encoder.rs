//! The swappable backbone encoder: Transformer encoder (TimeDRL's choice)
//! plus the five alternatives of the Table VIII ablation.
//!
//! Every variant maps a token sequence `[B, T', D] -> [B, T', D]` and
//! contains dropout, so the two-views-via-dropout mechanism works
//! regardless of backbone.

use crate::config::{EncoderKind, TimeDrlConfig};
use timedrl_nn::{
    BasicBlock1d, BiLstm, Ctx, Lstm, Module, Tcn, TransformerConfig, TransformerEncoder,
};
use timedrl_tensor::{Prng, Var};

/// A sequence-to-sequence backbone with uniform shape contract.
pub enum Encoder {
    /// Bidirectional Transformer encoder.
    Transformer(TransformerEncoder),
    /// Causal (masked) Transformer.
    TransformerDecoder(TransformerEncoder),
    /// Length-preserving 1-D residual CNN over the token axis.
    ResNet {
        /// Stride-1 residual blocks.
        blocks: Vec<BasicBlock1d>,
        /// Output dropout giving the two-view randomness.
        dropout: f32,
    },
    /// Dilated causal TCN over the token axis.
    Tcn {
        /// The underlying network (its blocks carry dropout).
        net: Tcn,
    },
    /// Uni-directional LSTM.
    Lstm {
        /// The recurrent cell stack.
        net: Lstm,
        /// Output dropout giving the two-view randomness.
        dropout: f32,
    },
    /// Bi-directional LSTM (hidden width `D/2` per direction).
    BiLstm {
        /// Forward + backward cells.
        net: BiLstm,
        /// Output dropout giving the two-view randomness.
        dropout: f32,
    },
}

impl Encoder {
    /// Builds the backbone selected by `cfg.encoder`.
    pub fn new(cfg: &TimeDrlConfig, rng: &mut Prng) -> Self {
        let d = cfg.d_model;
        match cfg.encoder {
            EncoderKind::TransformerEncoder => Encoder::Transformer(TransformerEncoder::new(
                &transformer_cfg(cfg, false),
                rng,
            )),
            EncoderKind::TransformerDecoder => Encoder::TransformerDecoder(
                TransformerEncoder::new(&transformer_cfg(cfg, true), rng),
            ),
            EncoderKind::ResNet => {
                let blocks = (0..cfg.n_layers.max(2))
                    .map(|_| BasicBlock1d::new(d, d, 1, rng))
                    .collect();
                Encoder::ResNet { blocks, dropout: cfg.dropout }
            }
            EncoderKind::Tcn => Encoder::Tcn {
                net: Tcn::new(d, &vec![d; cfg.n_layers.max(2)], 3, cfg.dropout, rng),
            },
            EncoderKind::Lstm => Encoder::Lstm { net: Lstm::new(d, d, rng), dropout: cfg.dropout },
            EncoderKind::BiLstm => {
                assert!(d % 2 == 0, "Bi-LSTM needs even d_model");
                Encoder::BiLstm { net: BiLstm::new(d, d / 2, rng), dropout: cfg.dropout }
            }
        }
    }

    /// Applies the backbone to a `[B, T', D]` token sequence.
    pub fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        match self {
            Encoder::Transformer(t) | Encoder::TransformerDecoder(t) => t.forward(x, ctx),
            Encoder::ResNet { blocks, dropout } => {
                // Conv nets take channels-first: [B, D, T'].
                let mut h = x.permute(&[0, 2, 1]);
                for b in blocks {
                    h = b.forward(&h);
                }
                h.permute(&[0, 2, 1]).dropout(*dropout, ctx.training, &mut ctx.rng)
            }
            Encoder::Tcn { net } => {
                let h = net.forward(&x.permute(&[0, 2, 1]), ctx);
                h.permute(&[0, 2, 1])
            }
            Encoder::Lstm { net, dropout } => {
                net.forward(x).dropout(*dropout, ctx.training, &mut ctx.rng)
            }
            Encoder::BiLstm { net, dropout } => {
                net.forward(x).dropout(*dropout, ctx.training, &mut ctx.rng)
            }
        }
    }
}

impl Module for Encoder {
    fn parameters(&self) -> Vec<Var> {
        match self {
            Encoder::Transformer(t) | Encoder::TransformerDecoder(t) => t.parameters(),
            Encoder::ResNet { blocks, .. } => blocks.iter().flat_map(|b| b.parameters()).collect(),
            Encoder::Tcn { net } => net.parameters(),
            Encoder::Lstm { net, .. } => net.parameters(),
            Encoder::BiLstm { net, .. } => net.parameters(),
        }
    }
}

fn transformer_cfg(cfg: &TimeDrlConfig, causal: bool) -> TransformerConfig {
    TransformerConfig {
        d_model: cfg.d_model,
        n_heads: cfg.n_heads,
        d_ff: cfg.d_ff,
        n_layers: cfg.n_layers,
        dropout: cfg.dropout,
        causal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimeDrlConfig;

    fn cfg_with(kind: EncoderKind) -> TimeDrlConfig {
        let mut cfg = TimeDrlConfig::forecasting(64);
        cfg.encoder = kind;
        cfg
    }

    #[test]
    fn every_backbone_preserves_token_shape() {
        let mut rng = Prng::new(0);
        for kind in EncoderKind::ALL {
            let enc = Encoder::new(&cfg_with(kind), &mut rng);
            let x = Var::constant(rng.randn(&[2, 9, 32]));
            let y = enc.forward(&x, &mut Ctx::eval());
            assert_eq!(y.shape(), vec![2, 9, 32], "shape broken for {}", kind.name());
        }
    }

    #[test]
    fn every_backbone_produces_two_distinct_training_views() {
        let mut rng = Prng::new(1);
        for kind in EncoderKind::ALL {
            let enc = Encoder::new(&cfg_with(kind), &mut rng);
            let x = Var::constant(rng.randn(&[2, 9, 32]));
            let mut ctx = Ctx::train(11);
            let a = enc.forward(&x, &mut ctx).to_array();
            let b = enc.forward(&x, &mut ctx).to_array();
            assert!(
                a.max_abs_diff(&b) > 1e-5,
                "{} has no live dropout for the two-view trick",
                kind.name()
            );
        }
    }

    #[test]
    fn every_backbone_is_trainable() {
        let mut rng = Prng::new(2);
        for kind in EncoderKind::ALL {
            let enc = Encoder::new(&cfg_with(kind), &mut rng);
            let x = Var::constant(rng.randn(&[1, 5, 32]));
            enc.forward(&x, &mut Ctx::train(3)).powf(2.0).mean().backward();
            let with_grad = enc.parameters().iter().filter(|p| p.grad().is_some()).count();
            assert!(with_grad > 0, "{} has no trainable path", kind.name());
        }
    }
}
