//! Integration tests for the full TimeDRL pipeline: pre-training dynamics,
//! disentanglement properties, collapse behaviour, and end-to-end
//! downstream evaluation across crates.

use timedrl::{
    classification_linear_eval, forecast_linear_eval, prepare_forecast_data, pretrain,
    EncoderKind, ForecastTask, Pooling, TimeDrl, TimeDrlConfig,
};
use timedrl_data::synth::classify::epilepsy;
use timedrl_data::synth::forecast::{etth1, exchange};
use timedrl_data::Augmentation;
use timedrl_eval::LogisticConfig;
use timedrl_nn::Ctx;
use timedrl_tensor::{NdArray, Prng};

fn tiny_cfg(input_len: usize) -> TimeDrlConfig {
    let mut cfg = TimeDrlConfig::forecasting(input_len);
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 3;
    cfg
}

fn sine_windows(n: usize, t: usize, seed: u64) -> NdArray {
    let mut rng = Prng::new(seed);
    NdArray::from_fn(&[n, t, 1], |flat| {
        let i = flat / t;
        ((flat % t) as f32 * 0.35 + i as f32 * 0.2).sin() + rng.normal_with(0.0, 0.1)
    })
}

#[test]
fn pretraining_improves_low_label_probe_over_random_encoder() {
    // The core value proposition: pre-trained embeddings beat random-init
    // embeddings under the same frozen probe *when labels are scarce*
    // (with abundant labels, random high-dimensional features plus a
    // ridge readout are already a strong baseline — the random-features
    // effect — so the label-limited regime is where representation
    // quality is measurable).
    let ds = epilepsy(300, 3);
    let (train, test) = ds.train_test_split(0.6, &mut Prng::new(0)).unwrap();
    let labelled = train.subsample_labels(0.1, &mut Prng::new(1)).unwrap();
    let mut cfg = TimeDrlConfig::classification(train.sample_len(), train.features());
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 5;
    let probe = LogisticConfig::default();

    let random_model = TimeDrl::new(cfg.clone());
    let random = timedrl::probe_classification(&random_model, &labelled, &test, &probe);

    let trained_model = TimeDrl::new(cfg);
    pretrain(&trained_model, &train.to_batch()).unwrap(); // unlabeled pre-training
    let trained = timedrl::probe_classification(&trained_model, &labelled, &test, &probe);

    assert!(
        trained.accuracy > random.accuracy,
        "pretraining must help at 10% labels: trained {} vs random {}",
        trained.accuracy,
        random.accuracy
    );
}

#[test]
fn dual_level_embeddings_are_disentangled() {
    // The [CLS] embedding must carry information not recoverable by
    // pooling timestamp embeddings: after pre-training, the CLS and GAP
    // instance views differ substantially.
    let model = TimeDrl::new(tiny_cfg(32));
    let windows = sine_windows(48, 32, 0);
    pretrain(&model, &windows).unwrap();
    let mut ctx = Ctx::eval();
    let enc = model.encode(&windows.slice(0, 0, 8).unwrap(), &mut ctx);
    let cls = enc.instance(Pooling::Cls).to_array();
    let gap = enc.instance(Pooling::Gap).to_array();
    assert!(cls.max_abs_diff(&gap) > 0.1, "CLS degenerated into a pooled view");
}

#[test]
fn instance_embeddings_do_not_collapse() {
    let model = TimeDrl::new(tiny_cfg(32));
    let windows = sine_windows(64, 32, 1);
    pretrain(&model, &windows).unwrap();
    let z = model.embed_instances(&windows);
    // Across-batch variance of every dimension must not vanish.
    let std = z.var_axis(0, false).sqrt();
    assert!(std.mean() > 1e-3, "mean embedding std {} indicates collapse", std.mean());
}

#[test]
fn lambda_zero_still_learns_reconstruction() {
    // With lambda = 0 the contrastive task is off; predictive loss must
    // still fall (the two tasks are genuinely separate).
    let mut cfg = tiny_cfg(32);
    cfg.lambda = 0.0;
    let model = TimeDrl::new(cfg);
    let report = pretrain(&model, &sine_windows(48, 32, 2)).unwrap();
    assert!(report.predictive.last().unwrap() < &report.predictive[0]);
    // And the contrastive loss (tracked but unweighted) stays in range.
    assert!(report.contrastive.iter().all(|c| (-1.0..=1.0).contains(c)));
}

#[test]
fn exchange_random_walk_needs_revin_denormalization() {
    // Exchange is near a random walk: the window's own level carries most
    // of the predictable signal. The RevIN-style denormalized probe must
    // beat the variance baseline (MSE of predicting the global mean ~ 1).
    let ds = exchange(1500, 4).univariate();
    let task = ForecastTask { lookback: 32, horizon: 8, stride: 8 };
    let data = prepare_forecast_data(&ds, &task);
    let (_, result, _) = forecast_linear_eval(&tiny_cfg(32), &data, 1.0);
    assert!(result.mse < 0.9, "RevIN probe must exploit window level: mse {}", result.mse);
}

#[test]
fn classification_pipeline_beats_chance_on_epilepsy() {
    let ds = epilepsy(120, 5);
    let (train, test) = ds.train_test_split(0.6, &mut Prng::new(0)).unwrap();
    let mut cfg = TimeDrlConfig::classification(train.sample_len(), train.features());
    cfg.d_model = 16;
    cfg.d_ff = 32;
    cfg.n_heads = 2;
    cfg.epochs = 3;
    let probe = LogisticConfig { epochs: 150, ..Default::default() };
    let (_, report) = classification_linear_eval(&cfg, &train, &test, &probe);
    assert!(report.accuracy > 0.7, "epilepsy accuracy {}", report.accuracy);
    assert!(report.kappa > 0.3, "epilepsy kappa {}", report.kappa);
}

#[test]
fn every_encoder_kind_pretrains() {
    // Table VIII coverage: all six backbones run the full pretext
    // pipeline without shape or gradient failures.
    for kind in EncoderKind::ALL {
        let mut cfg = tiny_cfg(32);
        cfg.encoder = kind;
        cfg.epochs = 1;
        let model = TimeDrl::new(cfg);
        let report = pretrain(&model, &sine_windows(16, 32, 3)).unwrap();
        assert!(
            report.final_loss().unwrap().is_finite(),
            "{} produced non-finite loss",
            kind.name()
        );
    }
}

#[test]
fn every_augmentation_pretrains() {
    // Table VI coverage: all seven augmentation settings run end-to-end.
    for aug in Augmentation::ALL {
        let mut cfg = tiny_cfg(32);
        cfg.augmentation = aug;
        cfg.epochs = 1;
        let model = TimeDrl::new(cfg);
        let report = pretrain(&model, &sine_windows(16, 32, 4)).unwrap();
        assert!(report.final_loss().unwrap().is_finite(), "{} failed", aug.name());
    }
}

#[test]
fn without_stop_gradient_embeddings_shrink_toward_collapse() {
    // Table IX mechanism check: training the contrastive task alone
    // (lambda large) without stop-gradient drives the representation
    // toward the trivial solution faster than with it.
    let run = |sg: bool| {
        let mut cfg = tiny_cfg(32);
        cfg.stop_gradient = sg;
        cfg.lambda = 50.0; // contrastive-dominated
        cfg.epochs = 6;
        let model = TimeDrl::new(cfg);
        let windows = sine_windows(48, 32, 5);
        pretrain(&model, &windows).unwrap();
        let z = model.embed_instances(&windows);
        // Dispersion of normalized embeddings (collapse-sensitive).
        
        z.var_axis(0, false).sqrt().mean()
    };
    let with_sg = run(true);
    let without_sg = run(false);
    assert!(
        with_sg > without_sg * 0.8,
        "stop-gradient should preserve at least comparable dispersion: {} vs {}",
        with_sg,
        without_sg
    );
}

#[test]
fn deterministic_end_to_end() {
    let ds = etth1(1200, 6);
    let task = ForecastTask { lookback: 32, horizon: 8, stride: 16 };
    let data = prepare_forecast_data(&ds, &task);
    let (_, r1, _) = forecast_linear_eval(&tiny_cfg(32), &data, 1.0);
    let (_, r2, _) = forecast_linear_eval(&tiny_cfg(32), &data, 1.0);
    assert_eq!(r1.mse, r2.mse, "same config + seed must reproduce bit-exactly");
}

#[test]
fn checkpoint_roundtrip_preserves_behaviour() {
    // Save a trained model, perturb it, reload: embeddings must match the
    // originals bit-for-bit.
    let model = TimeDrl::new(tiny_cfg(32));
    let windows = sine_windows(24, 32, 9);
    pretrain(&model, &windows).unwrap();
    let before = model.embed_instances(&windows);

    let dir = std::env::temp_dir().join("timedrl_integration_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tdrl");
    model.save(&path).unwrap();

    // Wreck the weights, then restore.
    for p in timedrl_nn::Module::parameters(&model) {
        p.update_value(|w| *w = w.scale(0.0));
    }
    let wrecked = model.embed_instances(&windows);
    assert!(before.max_abs_diff(&wrecked) > 1e-3, "zeroing must change embeddings");

    model.load(&path).unwrap();
    let after = model.embed_instances(&windows);
    assert_eq!(before, after, "checkpoint must restore exact behaviour");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transpose_aware_backward_trains_identical_bits() {
    // The §10/§12 contract, end to end: a short pre-training run through
    // the transpose-aware gradient kernels must produce a byte-identical
    // checkpoint to the same run with every transposed operand explicitly
    // materialized first. The materialize hook is thread-local, so both
    // legs run the pool serially to keep the flag visible everywhere.
    let run = |materialized: bool| -> Vec<u8> {
        testkit::pool::with_threads(1, || {
            let train = || {
                let mut cfg = tiny_cfg(32);
                cfg.epochs = 2;
                let model = TimeDrl::new(cfg);
                pretrain(&model, &sine_windows(24, 32, 11)).unwrap();
                let dir = std::env::temp_dir().join(format!(
                    "timedrl_integration_tnbits_{}",
                    if materialized { "mat" } else { "fast" }
                ));
                std::fs::create_dir_all(&dir).unwrap();
                let path = dir.join("model.tdrl");
                model.save(&path).unwrap();
                let bytes = std::fs::read(&path).unwrap();
                std::fs::remove_dir_all(&dir).ok();
                bytes
            };
            if materialized {
                timedrl_tensor::with_materialized_transposes(train)
            } else {
                train()
            }
        })
    };
    assert_eq!(
        run(false),
        run(true),
        "strided-packing backward must train bit-identically to materialize-then-multiply"
    );
}

#[test]
fn checkpoint_rejects_mismatched_architecture() {
    let model = TimeDrl::new(tiny_cfg(32));
    let dir = std::env::temp_dir().join("timedrl_integration_ckpt2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tdrl");
    model.save(&path).unwrap();
    let mut other_cfg = tiny_cfg(32);
    other_cfg.d_model = 32; // different width
    let other = TimeDrl::new(other_cfg);
    assert!(other.load(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
