//! Gradient check for the SimSiam-style predictor (`ContrastHead`, the
//! asymmetric half of the stop-gradient pair): finite differences through
//! the full `Linear -> BatchNorm -> ReLU -> Linear` bottleneck.

use timedrl::model::ContrastHead;
use timedrl_tensor::gradcheck::assert_gradients_close;
use timedrl_tensor::Prng;

#[test]
fn contrast_head_gradcheck() {
    let mut rng = Prng::new(200);
    let head = ContrastHead::new(8, &mut rng);
    // Eval mode: BatchNorm uses (fixed) running statistics, so the loss is
    // a smooth deterministic function of the probe point. Shift inputs away
    // from the ReLU kink so central differences stay on one side.
    let x = rng.randn(&[4, 8]).map(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
    assert_gradients_close(&x, 1e-3, 2e-2, |v| head.forward(v, false).powf(2.0).mean());
}

#[test]
fn contrast_head_preserves_width_and_gradients_reach_all_params() {
    let mut rng = Prng::new(201);
    let head = ContrastHead::new(16, &mut rng);
    let x = timedrl_tensor::Var::constant(rng.randn(&[3, 16]));
    let y = head.forward(&x, true);
    assert_eq!(y.shape(), vec![3, 16]);
    y.powf(2.0).mean().backward();
    for p in timedrl_nn::Module::parameters(&head) {
        assert!(p.grad().is_some());
    }
}
