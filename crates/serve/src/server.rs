//! The serving loops: a stream server (stdin/stdout or any
//! `Read`+`Write` pair) and a TCP server with a single compute thread
//! that drains the connection queue into coalesced micro-batches.

use crate::batcher::Batcher;
use crate::cache::EmbedCache;
use crate::compiled::CompiledModel;
use crate::error::{Result, ServeError};
use crate::protocol;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::mpsc;

/// Serving knobs; `Default` is sized for interactive embedding traffic.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Largest coalesced batch per encoder pass (and per request).
    pub max_batch: usize,
    /// Largest accepted frame payload, in bytes. Checked against the
    /// length prefix *before* any payload allocation.
    pub max_payload: usize,
    /// Windows held by the embedding cache; `0` disables caching.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { max_batch: 64, max_payload: 64 << 20, cache_capacity: 1024 }
    }
}

/// Statistics from one serving session.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServeStats {
    /// Requests answered with embeddings.
    pub served: u64,
    /// Requests answered with a typed error frame.
    pub rejected: u64,
    /// Cache hits / misses across the session.
    pub cache_hits: u64,
    /// See `cache_hits`.
    pub cache_misses: u64,
}

/// Serves frames from `r`, writing one response frame per request to `w`,
/// until clean end-of-stream. Malformed *requests* get an error frame and
/// the loop continues; a torn *frame* (truncated or checksum-corrupt
/// stream) gets an error frame and ends the session, because the stream
/// can no longer be trusted to be frame-aligned.
pub fn serve_stream(
    model: &CompiledModel,
    r: &mut impl Read,
    w: &mut impl Write,
    cfg: ServeConfig,
) -> Result<ServeStats> {
    let mut cache = EmbedCache::new(cfg.cache_capacity);
    let batcher = Batcher::new(cfg.max_batch);
    let mut stats = ServeStats::default();
    // Reused across requests: steady-state frame handling allocates only
    // inside cache inserts.
    let mut frame = Vec::new();
    let mut out = Vec::new();
    loop {
        match protocol::read_frame_into(r, &mut frame, cfg.max_payload) {
            Ok(false) => break,
            Ok(true) => {}
            Err(err) => {
                stats.rejected += 1;
                protocol::encode_error(&mut out, &err);
                protocol::write_frame(w, &out)?;
                w.flush().map_err(ServeError::Io)?;
                break;
            }
        }
        let answer = protocol::decode_request(
            &frame,
            model.input_len(),
            model.n_features(),
            cfg.max_batch,
        )
        .and_then(|req| {
            let mut embs = batcher.run(model, Some(&mut cache), &[req])?;
            Ok(embs.pop().expect("one request in, one embedding out"))
        });
        match answer {
            Ok(emb) => {
                stats.served += 1;
                protocol::encode_response(&mut out, &emb, model.precision());
            }
            Err(err) => {
                stats.rejected += 1;
                protocol::encode_error(&mut out, &err);
            }
        }
        protocol::write_frame(w, &out)?;
        w.flush().map_err(ServeError::Io)?;
    }
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    Ok(stats)
}

/// One queued unit of work: a decoded request plus the channel its
/// encoded response frame goes back on.
struct Job {
    windows: timedrl_tensor::NdArray,
    reply: mpsc::Sender<Vec<u8>>,
}

/// Serves TCP connections on `listener` forever. Each connection gets a
/// reader thread that decodes frames and queues jobs; a single compute
/// thread owns the model and cache, draining however many jobs are queued
/// the moment it goes idle into one coalesced batch (adaptive micro-
/// batching, capped at `cfg.max_batch` windows per encoder pass).
pub fn serve_tcp(model: CompiledModel, listener: TcpListener, cfg: ServeConfig) -> Result<()> {
    let (t, c) = (model.input_len(), model.n_features());
    let (tx, rx) = mpsc::channel::<Job>();

    let compute = std::thread::spawn(move || {
        let mut cache = EmbedCache::new(cfg.cache_capacity);
        let batcher = Batcher::new(cfg.max_batch);
        while let Ok(first) = rx.recv() {
            // Adaptive coalescing: take everything already waiting.
            let mut jobs = vec![first];
            while jobs.len() < cfg.max_batch {
                match rx.try_recv() {
                    Ok(job) => jobs.push(job),
                    Err(_) => break,
                }
            }
            let requests: Vec<_> = jobs.iter().map(|j| j.windows.clone()).collect();
            match batcher.run(&model, Some(&mut cache), &requests) {
                Ok(embs) => {
                    for (job, emb) in jobs.iter().zip(&embs) {
                        let mut out = Vec::new();
                        protocol::encode_response(&mut out, emb, model.precision());
                        let _ = job.reply.send(out);
                    }
                }
                Err(err) => {
                    // A failed coalesced pass fails every member request.
                    for job in &jobs {
                        let mut out = Vec::new();
                        protocol::encode_error(&mut out, &err);
                        let _ = job.reply.send(out);
                    }
                }
            }
        }
    });

    for conn in listener.incoming() {
        let stream = conn.map_err(ServeError::Io)?;
        let tx = tx.clone();
        std::thread::spawn(move || {
            let _ = serve_connection(stream, tx, cfg, t, c);
        });
    }
    drop(tx);
    let _ = compute.join();
    Ok(())
}

/// Reader half of one TCP connection: decode frames, queue jobs, relay
/// the compute thread's response frames back over the socket.
fn serve_connection(
    stream: std::net::TcpStream,
    tx: mpsc::Sender<Job>,
    cfg: ServeConfig,
    expect_t: usize,
    expect_c: usize,
) -> Result<()> {
    let mut reader = stream.try_clone().map_err(ServeError::Io)?;
    let mut writer = stream;
    let mut frame = Vec::new();
    let mut out = Vec::new();
    loop {
        match protocol::read_frame_into(&mut reader, &mut frame, cfg.max_payload) {
            Ok(false) => return Ok(()),
            Ok(true) => {}
            Err(err) => {
                protocol::encode_error(&mut out, &err);
                protocol::write_frame(&mut writer, &out)?;
                return Err(err);
            }
        }
        // Shape errors are rejected here, so only valid work is queued and
        // one malformed request can never fail a coalesced batch.
        match protocol::decode_request(&frame, expect_t, expect_c, cfg.max_batch) {
            Ok(windows) => {
                let (reply_tx, reply_rx) = mpsc::channel();
                tx.send(Job { windows, reply: reply_tx })
                    .map_err(|_| ServeError::BadRequest("compute thread gone".into()))?;
                let resp = reply_rx
                    .recv()
                    .map_err(|_| ServeError::BadRequest("compute thread gone".into()))?;
                protocol::write_frame(&mut writer, &resp)?;
            }
            Err(err) => {
                protocol::encode_error(&mut out, &err);
                protocol::write_frame(&mut writer, &out)?;
            }
        }
    }
}
