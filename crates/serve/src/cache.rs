//! LRU embedding cache keyed by window hash.
//!
//! The cache stores per-*window* results (one `[T, C]` window → one `z_i`
//! row and one `[T_p, D]` `z_t` block), so a repeated window is served
//! without touching the encoder regardless of which batch it arrives in.
//!
//! Semantic invisibility: the key is an FNV-1a hash of the window's f32
//! *bit patterns*, and every hash hit is confirmed by an exact bit-level
//! comparison against the stored window before it is served — a hash
//! collision degrades to a miss, never to a wrong embedding. Combined with
//! the batch-position invariance of the compiled kernels (DESIGN.md §13),
//! a cache-enabled server is byte-for-byte indistinguishable from a
//! cache-free one (property-tested in `tests/invisibility.rs`).

/// FNV-1a (64-bit) over a window's f32 bit patterns. Distinct NaN
/// encodings hash (and compare) as distinct, which is exactly what an
/// invisibility guarantee wants: the cache discriminates at least as
/// finely as the encoder does.
pub fn window_hash(window: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in window {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Entry {
    window: Vec<f32>,
    z_i: Vec<f32>,
    z_t: Vec<f32>,
    /// Monotonic recency stamp; smallest = least recently used.
    tick: u64,
}

/// Fixed-capacity least-recently-used cache of window embeddings.
pub struct EmbedCache {
    capacity: usize,
    tick: u64,
    entries: std::collections::HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
}

impl EmbedCache {
    /// Creates a cache holding at most `capacity` windows. A zero capacity
    /// is a valid always-miss cache.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: std::collections::HashMap::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a window. On a hit returns the cached `(z_i row, z_t
    /// block)` and refreshes the entry's recency; a hash collision with a
    /// different window counts as a miss.
    pub fn lookup(&mut self, window: &[f32]) -> Option<(&[f32], &[f32])> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&window_hash(window)) {
            Some(e) if bits_equal(&e.window, window) => {
                e.tick = tick;
                self.hits += 1;
                Some((&e.z_i, &e.z_t))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a window's embedding, evicting the least recently used
    /// entry if the cache is full. A colliding key is overwritten (the
    /// newer window wins — lookups for the older one then miss).
    pub fn insert(&mut self, window: &[f32], z_i: &[f32], z_t: &[f32]) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let key = window_hash(window);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some((&lru, _)) = self.entries.iter().min_by_key(|(_, e)| e.tick) {
                self.entries.remove(&lru);
            }
        }
        self.entries.insert(
            key,
            Entry {
                window: window.to_vec(),
                z_i: z_i.to_vec(),
                z_t: z_t.to_vec(),
                tick: self.tick,
            },
        );
    }

    /// Windows currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the encoder.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// True if an *exact* copy of `window` is cached (no recency bump, no
    /// counter update) — test/introspection helper.
    pub fn contains(&self, window: &[f32]) -> bool {
        self.entries
            .get(&window_hash(window))
            .is_some_and(|e| bits_equal(&e.window, window))
    }
}

/// Bit-level f32 slice equality (`==` on floats would conflate NaNs and
/// `±0.0`, which is the wrong equivalence for a byte-parity guarantee).
fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(tag: f32) -> Vec<f32> {
        (0..8).map(|i| tag + i as f32 * 0.25).collect()
    }

    #[test]
    fn hit_returns_exact_bits_and_counts() {
        let mut c = EmbedCache::new(4);
        let w = win(1.0);
        assert!(c.lookup(&w).is_none());
        c.insert(&w, &[0.5, -0.5], &[1.0, 2.0, 3.0, 4.0]);
        let (zi, zt) = c.lookup(&w).expect("hit");
        assert_eq!(zi, &[0.5, -0.5]);
        assert_eq!(zt, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn eviction_follows_lru_order() {
        // Capacity 2: insert A, B; touch A; insert C => B (the LRU) goes.
        let mut c = EmbedCache::new(2);
        let (a, b, d) = (win(1.0), win(2.0), win(3.0));
        c.insert(&a, &[1.0], &[1.0]);
        c.insert(&b, &[2.0], &[2.0]);
        assert!(c.lookup(&a).is_some());
        c.insert(&d, &[3.0], &[3.0]);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&a), "recently used entry survives");
        assert!(c.contains(&d), "new entry present");
        assert!(!c.contains(&b), "least recently used entry evicted");
    }

    #[test]
    fn nan_windows_discriminate_by_bit_pattern() {
        let mut c = EmbedCache::new(2);
        let quiet = [f32::from_bits(0x7FC0_0000)];
        let other = [f32::from_bits(0x7FC0_0001)];
        c.insert(&quiet, &[1.0], &[1.0]);
        assert!(c.lookup(&quiet).is_some(), "same NaN bits hit");
        assert!(c.lookup(&other).is_none(), "different NaN bits miss");
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = EmbedCache::new(0);
        let w = win(1.0);
        c.insert(&w, &[1.0], &[1.0]);
        assert!(c.is_empty());
        assert!(c.lookup(&w).is_none());
    }
}
