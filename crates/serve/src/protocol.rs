//! Length-prefixed wire protocol for the embedding service.
//!
//! Every frame is `u32-le payload-len | u32-le crc32(payload) | payload`.
//! The CRC makes *any* single-byte corruption — header or float data —
//! detectable (exhaustively tested in `tests/corruption.rs`), mirroring
//! the checkpoint container's integrity story on the wire.
//!
//! Request payload (`REQ_EMBED`):
//!
//! ```text
//! u32 tag(1)   u64 batch   u64 t   u64 c   batch·t·c × f32-le
//! ```
//!
//! Response payload: `u32 status`, then for `RESP_OK`
//!
//! ```text
//! u32 precision-tag   u64 batch   u64 zi-dim   u64 t_p   u64 d
//! batch·zi-dim × f32-le (z_i)   batch·t_p·d × f32-le (z_t)
//! ```
//!
//! The precision tag names the exactness tier the embeddings were computed
//! under (`0` exact, `1` relaxed), so clients can tell whether a response
//! is byte-comparable to an exact-tier golden or only ε-comparable.
//!
//! and for `RESP_ERR` a `u32` length + UTF-8 message.
//!
//! Failure model: readers never trust a length they have not checked. A
//! lying prefix is capped by the connection's `max_payload` *before* any
//! allocation, payload reads are incremental, and every decode step
//! validates counts against the bytes actually present — malformed input
//! yields [`ServeError::BadFrame`], never a panic or an over-sized
//! reservation.

use crate::compiled::Embeddings;
use crate::error::{Result, ServeError};
use std::io::{Read, Write};
use testkit::crc32::Crc32;
use timedrl::Precision;
use timedrl_tensor::NdArray;

/// Request tag: embed a batch of raw windows.
pub const REQ_EMBED: u32 = 1;
/// Response status: success.
pub const RESP_OK: u32 = 0;
/// Response status: typed failure, payload carries the message.
pub const RESP_ERR: u32 = 1;

/// Incremental read chunk, bounding per-step allocation on lying prefixes.
const READ_CHUNK: usize = 64 * 1024;

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadFrame(msg.into())
}

/// Writes one frame (length prefix, checksum, payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut crc = Crc32::new();
    crc.update(payload);
    w.write_all(&(payload.len() as u32).to_le_bytes()).map_err(ServeError::Io)?;
    w.write_all(&crc.finish().to_le_bytes()).map_err(ServeError::Io)?;
    w.write_all(payload).map_err(ServeError::Io)?;
    Ok(())
}

/// Reads one frame into `buf` (cleared first; its capacity is reused
/// across calls, so a steady-state connection loop performs no heap
/// allocation here). Returns `false` on clean end-of-stream *before* any
/// header byte; a stream that dies mid-frame is a [`ServeError::BadFrame`].
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>, max_payload: usize) -> Result<bool> {
    buf.clear();
    let mut header = [0u8; 8];
    // Distinguish clean EOF (no more frames) from a torn header.
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..]).map_err(ServeError::Io)?;
        if n == 0 {
            if got == 0 {
                return Ok(false);
            }
            return Err(bad(format!("stream ended {got} bytes into a frame header")));
        }
        got += n;
    }
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    let declared_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
    if len > max_payload {
        return Err(bad(format!("frame declares {len} bytes, connection cap is {max_payload}")));
    }
    let mut chunk = [0u8; READ_CHUNK];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(READ_CHUNK);
        let n = r.read(&mut chunk[..want]).map_err(ServeError::Io)?;
        if n == 0 {
            return Err(bad(format!(
                "truncated frame: header declares {len} bytes, stream ended {remaining} short"
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
        remaining -= n;
    }
    let mut crc = Crc32::new();
    crc.update(buf);
    if crc.finish() != declared_crc {
        return Err(bad(format!(
            "frame checksum mismatch: stored {declared_crc:#010x}, computed {:#010x}",
            crc.finish()
        )));
    }
    Ok(true)
}

/// Bounds-checked little-endian cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if n > self.remaining() {
            return Err(bad(format!("truncated payload: need {n} bytes, {} remain", self.remaining())));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn dim(&mut self, name: &str) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| bad(format!("{name} {v} overflows")))
    }

    /// Copies `n` f32s into `dst` (already sized by a validated count).
    fn f32_into(&mut self, dst: &mut [f32]) -> Result<()> {
        let raw = self.take(dst.len() * 4)?;
        for (d, chunk) in dst.iter_mut().zip(raw.chunks_exact(4)) {
            *d = f32::from_le_bytes(chunk.try_into().unwrap());
        }
        Ok(())
    }

    fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(bad(format!("{} trailing bytes after payload", self.remaining())));
        }
        Ok(())
    }
}

fn push_f32s(buf: &mut Vec<u8>, data: &[f32]) {
    for &v in data {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Encodes an embed request for a `[B, T, C]` window batch.
pub fn encode_request(windows: &NdArray) -> Vec<u8> {
    assert_eq!(windows.rank(), 3, "request encodes [B, T, C] windows");
    let mut buf = Vec::with_capacity(28 + windows.numel() * 4);
    buf.extend_from_slice(&REQ_EMBED.to_le_bytes());
    for &dim in windows.shape() {
        buf.extend_from_slice(&(dim as u64).to_le_bytes());
    }
    push_f32s(&mut buf, windows.data());
    buf
}

/// Decodes and validates an embed request against the served model's
/// window geometry and the connection's batch cap.
pub fn decode_request(
    payload: &[u8],
    expect_t: usize,
    expect_c: usize,
    max_batch: usize,
) -> Result<NdArray> {
    let mut cur = Cursor::new(payload);
    let tag = cur.u32()?;
    if tag != REQ_EMBED {
        return Err(bad(format!("unknown request tag {tag}")));
    }
    let b = cur.dim("batch")?;
    let t = cur.dim("window length")?;
    let c = cur.dim("feature count")?;
    if t != expect_t || c != expect_c {
        return Err(ServeError::BadRequest(format!(
            "model serves [*, {expect_t}, {expect_c}] windows, request sends [*, {t}, {c}]"
        )));
    }
    if b == 0 {
        return Err(ServeError::BadRequest("empty batch".into()));
    }
    if b > max_batch {
        return Err(ServeError::BadRequest(format!("batch {b} exceeds server cap {max_batch}")));
    }
    // b·t·c is bounded by the frame cap the payload already passed, so
    // this zeros() cannot over-allocate; the element count is still
    // validated against the bytes actually present before the copy.
    let numel = b
        .checked_mul(t)
        .and_then(|v| v.checked_mul(c))
        .ok_or_else(|| bad("window element count overflows".to_string()))?;
    if cur.remaining() != numel * 4 {
        return Err(bad(format!(
            "payload carries {} bytes of samples, dims {b}x{t}x{c} need {}",
            cur.remaining(),
            numel * 4
        )));
    }
    let mut out = NdArray::zeros(&[b, t, c]);
    cur.f32_into(out.data_mut())?;
    cur.finish()?;
    Ok(out)
}

/// Encodes a success response into `buf` (cleared first, capacity reused).
/// The precision tag records the exactness tier the serving model ran under.
pub fn encode_response(buf: &mut Vec<u8>, emb: &Embeddings, precision: Precision) {
    buf.clear();
    let (b, zi_dim) = (emb.z_i.shape()[0], emb.z_i.shape()[1]);
    let (t_p, d) = (emb.z_t.shape()[1], emb.z_t.shape()[2]);
    buf.extend_from_slice(&RESP_OK.to_le_bytes());
    buf.extend_from_slice(&precision.tag().to_le_bytes());
    for dim in [b, zi_dim, t_p, d] {
        buf.extend_from_slice(&(dim as u64).to_le_bytes());
    }
    push_f32s(buf, emb.z_i.data());
    push_f32s(buf, emb.z_t.data());
}

/// Encodes an error response into `buf` (cleared first).
pub fn encode_error(buf: &mut Vec<u8>, err: &ServeError) {
    buf.clear();
    let msg = err.to_string();
    buf.extend_from_slice(&RESP_ERR.to_le_bytes());
    buf.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    buf.extend_from_slice(msg.as_bytes());
}

/// Decodes a response payload (client side), returning the embeddings
/// together with the exactness tier they were computed under. A
/// `RESP_ERR` payload comes back as [`ServeError::BadRequest`] carrying
/// the server's message.
pub fn decode_response(payload: &[u8]) -> Result<(Embeddings, Precision)> {
    let mut cur = Cursor::new(payload);
    match cur.u32()? {
        RESP_OK => {
            let prec_tag = cur.u32()?;
            let precision = Precision::from_tag(prec_tag)
                .ok_or_else(|| bad(format!("unknown precision tag {prec_tag}")))?;
            let b = cur.dim("batch")?;
            let zi_dim = cur.dim("zi width")?;
            let t_p = cur.dim("patch count")?;
            let d = cur.dim("d_model")?;
            let zi_n = b
                .checked_mul(zi_dim)
                .ok_or_else(|| bad("zi element count overflows".to_string()))?;
            let zt_n = b
                .checked_mul(t_p)
                .and_then(|v| v.checked_mul(d))
                .ok_or_else(|| bad("zt element count overflows".to_string()))?;
            if cur.remaining() != (zi_n + zt_n) * 4 {
                return Err(bad(format!(
                    "response carries {} bytes, dims need {}",
                    cur.remaining(),
                    (zi_n + zt_n) * 4
                )));
            }
            let mut z_i = NdArray::zeros(&[b, zi_dim]);
            cur.f32_into(z_i.data_mut())?;
            let mut z_t = NdArray::zeros(&[b, t_p, d]);
            cur.f32_into(z_t.data_mut())?;
            cur.finish()?;
            Ok((Embeddings { z_i, z_t }, precision))
        }
        RESP_ERR => {
            let len = cur.u32()? as usize;
            let raw = cur.take(len)?;
            let msg = std::str::from_utf8(raw).map_err(|_| bad("non-UTF-8 error message".to_string()))?;
            Err(ServeError::BadRequest(format!("server error: {msg}")))
        }
        other => Err(bad(format!("unknown response status {other}"))),
    }
}
