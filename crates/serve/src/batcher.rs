//! Micro-batch coalescing: many pending requests, one encoder pass.
//!
//! The server drains whatever requests are queued at the instant the
//! encoder goes idle and runs them as a single stacked batch (capped by
//! `max_batch`) — batch size adapts to instantaneous load instead of
//! waiting on a timer. Cached windows are filled from the [`EmbedCache`]
//! and only the misses reach the encoder.
//!
//! Coalescing is *semantically invisible*: every compiled kernel is
//! batch-position invariant (each output row depends only on its own
//! window, with ascending-index accumulation — DESIGN.md §13), so a
//! window embeds to the same bits whether it runs alone, stacked with
//! strangers, or is replayed from the cache. `tests/invisibility.rs`
//! byte-compares all three paths.

use crate::cache::EmbedCache;
use crate::compiled::{CompiledModel, Embeddings};
use crate::error::{Result, ServeError};
use timedrl_tensor::NdArray;

/// Where one window of one request gets its embedding from.
enum Source {
    /// Already copied into the output from the cache.
    Cached,
    /// Row `i` of the coalesced miss batch.
    Miss(usize),
}

/// Stacks pending requests into as few encoder passes as possible.
pub struct Batcher {
    max_batch: usize,
}

impl Batcher {
    /// `max_batch` caps the coalesced batch per encoder pass (also the
    /// batch size worth warming the arena for).
    pub fn new(max_batch: usize) -> Self {
        Self { max_batch: max_batch.max(1) }
    }

    /// Largest batch one encoder pass will see.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Embeds every request, serving repeated windows from `cache` (when
    /// given) and coalescing the rest into `max_batch`-sized encoder
    /// passes. Returns one [`Embeddings`] per request, in order,
    /// byte-identical to embedding each request alone with no cache.
    pub fn run(
        &self,
        model: &CompiledModel,
        mut cache: Option<&mut EmbedCache>,
        requests: &[NdArray],
    ) -> Result<Vec<Embeddings>> {
        let (t, c) = (model.input_len(), model.n_features());
        let win = t * c;
        let zi_dim = model.zi_dim();
        let zt_dim = model.num_patches() * model.d_model();

        let mut outputs: Vec<Embeddings> = Vec::with_capacity(requests.len());
        // (request, window-row, source) for every window in arrival order.
        let mut slots: Vec<(usize, usize, Source)> = Vec::new();
        let mut miss_windows: Vec<&[f32]> = Vec::new();

        for (r, req) in requests.iter().enumerate() {
            let shape = req.shape();
            if shape.len() != 3 || shape[1] != t || shape[2] != c {
                return Err(ServeError::BadRequest(format!(
                    "request {r}: expected [B, {t}, {c}] windows, got {shape:?}"
                )));
            }
            let b = shape[0];
            let mut out = Embeddings {
                z_i: NdArray::zeros(&[b, zi_dim]),
                z_t: NdArray::zeros(&[b, model.num_patches(), model.d_model()]),
            };
            for w in 0..b {
                let window = &req.data()[w * win..(w + 1) * win];
                let source = match cache.as_deref_mut().and_then(|ca| ca.lookup(window)) {
                    Some((zi, zt)) => {
                        out.z_i.data_mut()[w * zi_dim..(w + 1) * zi_dim].copy_from_slice(zi);
                        out.z_t.data_mut()[w * zt_dim..(w + 1) * zt_dim].copy_from_slice(zt);
                        Source::Cached
                    }
                    None => {
                        miss_windows.push(window);
                        Source::Miss(miss_windows.len() - 1)
                    }
                };
                slots.push((r, w, source));
            }
            outputs.push(out);
        }

        // Encode the misses, `max_batch` windows per pass.
        let mut miss_zi: Vec<f32> = Vec::with_capacity(miss_windows.len() * zi_dim);
        let mut miss_zt: Vec<f32> = Vec::with_capacity(miss_windows.len() * zt_dim);
        for chunk in miss_windows.chunks(self.max_batch) {
            let mut stacked = NdArray::zeros(&[chunk.len(), t, c]);
            for (i, window) in chunk.iter().enumerate() {
                stacked.data_mut()[i * win..(i + 1) * win].copy_from_slice(window);
            }
            let emb = model.embed(&stacked)?;
            miss_zi.extend_from_slice(emb.z_i.data());
            miss_zt.extend_from_slice(emb.z_t.data());
        }
        for (i, window) in miss_windows.iter().enumerate() {
            if let Some(ca) = cache.as_deref_mut() {
                ca.insert(
                    window,
                    &miss_zi[i * zi_dim..(i + 1) * zi_dim],
                    &miss_zt[i * zt_dim..(i + 1) * zt_dim],
                );
            }
        }

        for (r, w, source) in slots {
            if let Source::Miss(i) = source {
                outputs[r].z_i.data_mut()[w * zi_dim..(w + 1) * zi_dim]
                    .copy_from_slice(&miss_zi[i * zi_dim..(i + 1) * zi_dim]);
                outputs[r].z_t.data_mut()[w * zt_dim..(w + 1) * zt_dim]
                    .copy_from_slice(&miss_zt[i * zt_dim..(i + 1) * zt_dim]);
            }
        }
        Ok(outputs)
    }
}
