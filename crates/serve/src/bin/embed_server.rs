//! Zero-dependency embedding server over a frozen TimeDRL checkpoint.
//!
//! ```text
//! embed_server --stdio <model.tdrl> [--max-batch N] [--cache N] [--precision exact|relaxed]
//! embed_server --tcp <addr> <model.tdrl> [--max-batch N] [--cache N] [--precision exact|relaxed]
//! ```
//!
//! `--stdio` answers length-prefixed frames on stdin/stdout until
//! end-of-stream (session stats go to stderr); `--tcp` listens forever,
//! coalescing concurrent connections into micro-batches on one compute
//! thread. The wire format is documented in `timedrl_serve::protocol`.
//!
//! `--precision` overrides the exactness tier stamped into the model
//! container: `relaxed` lowers every linear layer to the int8 quantized
//! GEMM and runs activation products through the FMA kernels; `exact`
//! forces the bitwise-reproducible f32 path. Without the flag the
//! container's own tier is honored. Every response frame carries the tier
//! it was computed under.

use std::io::Write;
use std::process::ExitCode;
use timedrl::Precision;
use timedrl_serve::{serve_stream, serve_tcp, CompiledModel, ServeConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: embed_server --stdio <model.tdrl> [--max-batch N] [--cache N] [--precision exact|relaxed]\n\
         \x20      embed_server --tcp <addr> <model.tdrl> [--max-batch N] [--cache N] [--precision exact|relaxed]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None; // ("stdio", model) | ("tcp", addr, model)
    let mut cfg = ServeConfig::default();
    let mut precision: Option<Precision> = None;

    let mut i = 0;
    let mut positional: Vec<&str> = Vec::new();
    let mut flag = None;
    while i < args.len() {
        match args[i].as_str() {
            "--stdio" | "--tcp" => {
                if flag.is_some() {
                    return usage();
                }
                flag = Some(args[i].clone());
            }
            "--max-batch" | "--cache" => {
                let Some(raw) = args.get(i + 1) else { return usage() };
                let Ok(n) = raw.parse::<usize>() else { return usage() };
                if args[i] == "--max-batch" {
                    cfg.max_batch = n.max(1);
                } else {
                    cfg.cache_capacity = n;
                }
                i += 1;
            }
            "--precision" => {
                precision = match args.get(i + 1).map(String::as_str) {
                    Some("exact") => Some(Precision::Exact),
                    Some("relaxed") => Some(Precision::Relaxed),
                    _ => return usage(),
                };
                i += 1;
            }
            other if !other.starts_with("--") => positional.push(other),
            _ => return usage(),
        }
        i += 1;
    }
    match (flag.as_deref(), positional.as_slice()) {
        (Some("--stdio"), [model]) => mode = Some(("stdio", String::new(), model.to_string())),
        (Some("--tcp"), [addr, model]) => {
            mode = Some(("tcp", addr.to_string(), model.to_string()))
        }
        _ => {}
    }
    let Some((kind, addr, model_path)) = mode else { return usage() };

    let loaded = match precision {
        Some(p) => CompiledModel::load_with(&model_path, p),
        None => CompiledModel::load(&model_path),
    };
    let model = match loaded {
        Ok(m) => m,
        Err(e) => {
            eprintln!("embed_server: cannot load {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("embed_server: serving at the {} tier", model.precision());
    // Pre-size the arena for the coalesced batch sizes the server will
    // actually run, so the very first request is already allocation-free.
    model.warm(1);
    model.warm(cfg.max_batch);

    match kind {
        "stdio" => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let mut r = stdin.lock();
            let mut w = stdout.lock();
            match serve_stream(&model, &mut r, &mut w, cfg) {
                Ok(stats) => {
                    let _ = w.flush();
                    eprintln!(
                        "embed_server: served={} rejected={} cache_hits={} cache_misses={}",
                        stats.served, stats.rejected, stats.cache_hits, stats.cache_misses
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("embed_server: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "tcp" => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("embed_server: cannot bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("embed_server: listening on {addr}");
            match serve_tcp(model, listener, cfg) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("embed_server: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => unreachable!(),
    }
}
