//! CI probe for the serving stack (see `ci.sh`).
//!
//! ```text
//! serve_probe prepare <dir>   # deterministic fixture: model export,
//!                             # request frames, tape-path golden outputs
//! serve_probe check <dir>     # compiled path: allocs/request + bitwise
//!                             # golden compare, plus a byte-compare of
//!                             # the real server's response.bin if present
//! ```
//!
//! `check` prints `allocs_per_request=N` for the gate and exits nonzero
//! on any mismatch. Run it with `TIMEDRL_THREADS=1`: the allocation
//! counter is process-global, so the measurement must be single-threaded.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;
use testkit::alloc::count_allocations;
use timedrl::{Precision, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_nn::Ctx;
use timedrl_serve::{protocol, CompiledModel, ServeError};
use timedrl_tensor::{NdArray, Prng};

/// Fixture batch size; `check` warms and measures at exactly this size.
const BATCH: usize = 3;

fn fixture_model() -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.seed = 7;
    TimeDrl::new(cfg)
}

fn fixture_windows() -> NdArray {
    Prng::new(5).randn(&[BATCH, 16, 1])
}

fn f32s_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for &v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn prepare(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let model = fixture_model();
    model.export(dir.join("model.tdrl"))?;

    let windows = fixture_windows();
    // Two identical request frames: the second exercises the server's
    // embedding cache, and must come back byte-identical to the first.
    let payload = protocol::encode_request(&windows);
    let mut request = Vec::new();
    for _ in 0..2 {
        protocol::write_frame(&mut request, &payload).expect("vec write");
    }
    std::fs::write(dir.join("request.bin"), &request)?;

    // Golden outputs from the tape path in eval mode.
    let enc = model.encode(&windows, &mut Ctx::eval());
    let z_i = enc.instance(model.config().pooling).to_array();
    let z_t = enc.timestamps().to_array();
    std::fs::write(dir.join("expected_zi.bin"), f32s_to_bytes(z_i.data()))?;
    std::fs::write(dir.join("expected_zt.bin"), f32s_to_bytes(z_t.data()))?;
    println!("serve_probe: fixture written to {}", dir.display());
    Ok(())
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("serve_probe: FAIL: {msg}");
    ExitCode::FAILURE
}

fn check(dir: &Path) -> ExitCode {
    let model = match CompiledModel::load(dir.join("model.tdrl")) {
        Ok(m) => m,
        Err(e) => return fail(format_args!("cannot load fixture model: {e}")),
    };
    // The goldens are exact-tier bytes; byte-comparing a relaxed model
    // against them would be a meaningless gate, so refuse with the typed
    // error instead of reporting a spurious mismatch.
    if model.precision() != Precision::Exact {
        return fail(ServeError::PrecisionMismatch {
            expected: "exact",
            actual: "relaxed",
        });
    }
    let windows = fixture_windows();

    // Warm the arena at the measured batch size, then require the steady
    // state to be allocation-free.
    model.warm(BATCH);
    model.warm(BATCH);
    let (result, allocs) = count_allocations(|| model.embed(&windows));
    let emb = match result {
        Ok(e) => e,
        Err(e) => return fail(format_args!("compiled embed failed: {e}")),
    };
    println!("allocs_per_request={allocs}");

    let expected_zi = match std::fs::read(dir.join("expected_zi.bin")) {
        Ok(b) => b,
        Err(e) => return fail(format_args!("missing expected_zi.bin: {e}")),
    };
    let expected_zt = match std::fs::read(dir.join("expected_zt.bin")) {
        Ok(b) => b,
        Err(e) => return fail(format_args!("missing expected_zt.bin: {e}")),
    };
    if f32s_to_bytes(emb.z_i.data()) != expected_zi {
        return fail("compiled z_i differs from tape-path golden bytes");
    }
    if f32s_to_bytes(emb.z_t.data()) != expected_zt {
        return fail("compiled z_t differs from tape-path golden bytes");
    }
    println!("serve_probe: compiled output bitwise-matches the tape path");

    // When ci.sh has piped request.bin through the real embed_server,
    // every response frame must carry the same golden bytes.
    let response_path = dir.join("response.bin");
    if response_path.exists() {
        let raw = match std::fs::read(&response_path) {
            Ok(b) => b,
            Err(e) => return fail(format_args!("cannot read response.bin: {e}")),
        };
        let mut reader = raw.as_slice();
        let mut frame = Vec::new();
        let mut count = 0;
        loop {
            match protocol::read_frame_into(&mut reader, &mut frame, 64 << 20) {
                Ok(false) => break,
                Ok(true) => {}
                Err(e) => return fail(format_args!("response frame {count}: {e}")),
            }
            let (resp, precision) = match protocol::decode_response(&frame) {
                Ok(r) => r,
                Err(e) => return fail(format_args!("response frame {count}: {e}")),
            };
            if precision != Precision::Exact {
                // A relaxed-tier response is only ε-comparable; the byte
                // gate below would reject it for the wrong reason.
                return fail(ServeError::PrecisionMismatch {
                    expected: "exact",
                    actual: "relaxed",
                });
            }
            if f32s_to_bytes(resp.z_i.data()) != expected_zi {
                return fail(format_args!("server response {count}: z_i bytes differ"));
            }
            if f32s_to_bytes(resp.z_t.data()) != expected_zt {
                return fail(format_args!("server response {count}: z_t bytes differ"));
            }
            count += 1;
        }
        if count != 2 {
            return fail(format_args!("expected 2 response frames, got {count}"));
        }
        println!("serve_probe: {count} server responses bitwise-match the golden bytes");
    }
    let _ = std::io::stdout().flush();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [cmd, dir] if cmd == "prepare" => match prepare(Path::new(dir)) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => fail(format_args!("prepare: {e}")),
        },
        [cmd, dir] if cmd == "check" => check(Path::new(dir)),
        _ => {
            eprintln!("usage: serve_probe (prepare|check) <dir>");
            ExitCode::from(2)
        }
    }
}
