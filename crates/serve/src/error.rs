//! Typed serving errors: every failure a checkpoint, request frame, or
//! embedding call can produce, surfaced as a value — the serving loop and
//! the corruption suite both rely on these paths never panicking.

use std::fmt;
use std::io;
use timedrl_tensor::TensorError;

/// Any error the serving stack can produce.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying I/O failure (socket closed, file unreadable, ...).
    Io(io::Error),
    /// The model container failed validation (bad magic/version/kind,
    /// checksum mismatch, corrupt header, shape mismatch).
    BadModel(String),
    /// The model's backbone has no compiled execution plan (only the
    /// Transformer encoder/decoder backbones are compiled).
    UnsupportedEncoder(&'static str),
    /// A wire frame violated the protocol (bad length prefix, checksum
    /// mismatch, unknown tag, dimension mismatch, truncated payload).
    BadFrame(String),
    /// A request was well-formed but unservable (window shape differs from
    /// the model, batch exceeds the server cap).
    BadRequest(String),
    /// A tensor operation failed during execution — indicates a plan bug,
    /// surfaced instead of panicking the serving process.
    Exec(TensorError),
    /// An exactness-tier mismatch: a byte-exact comparison was requested
    /// against output produced under a different precision tier. Relaxed
    /// responses are only ε-comparable to exact goldens, never
    /// byte-comparable.
    PrecisionMismatch {
        /// Tier the comparison baseline was produced under.
        expected: &'static str,
        /// Tier the response under test was produced under.
        actual: &'static str,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::BadModel(msg) => write!(f, "bad model container: {msg}"),
            ServeError::UnsupportedEncoder(name) => {
                write!(f, "no compiled plan for the {name} backbone")
            }
            ServeError::BadFrame(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "unservable request: {msg}"),
            ServeError::Exec(e) => write!(f, "execution error: {e}"),
            ServeError::PrecisionMismatch { expected, actual } => write!(
                f,
                "precision mismatch: byte-exact comparison expects the {expected} tier, \
                 response was produced under the {actual} tier"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        // Container readers signal corruption as InvalidData, and a file
        // too short for even the container header as UnexpectedEof; both
        // are corrupt artifacts, distinct from transport failures.
        if matches!(e.kind(), io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof) {
            ServeError::BadModel(e.to_string())
        } else {
            ServeError::Io(e)
        }
    }
}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Exec(e)
    }
}

/// Serving result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
