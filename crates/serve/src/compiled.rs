//! Tape-free compiled inference: a frozen `TimeDrl` encoder lowered to a
//! flat op plan over plain [`NdArray`] kernels.
//!
//! The training-time forward pass builds a `Var` tape — one `Rc` graph
//! node per op — even in eval mode, where no gradient will ever flow.
//! [`CompiledModel`] strips that away: at load it resolves every
//! batch-independent shape, validates the checkpoint against the declared
//! architecture, and lowers the encoder to a [`PlanOp`] list. Execution
//! walks that list calling the *same* packed [`matmul`] kernels and
//! broadcast arithmetic the tape path calls on its values — attention in
//! particular lowers to the fused tiled kernel ([`attention_fused`],
//! DESIGN.md §17), which is bitwise-equal to the composed
//! `matmul_nt → mask → softmax → matmul` chain without ever materializing
//! the `[B·H, S, S]` score tensor. That is what makes the output
//! bitwise-identical to `TimeDrl::encode` in eval mode (property-tested
//! in `tests/parity.rs`), not merely close.
//!
//! Memory model: every intermediate lives in a pooled tensor buffer
//! (DESIGN.md §10), so the arena is the PR-3 buffer pool itself.
//! [`CompiledModel::warm`] runs one forward at a given batch size to
//! pre-size those buckets (plus [`timedrl_tensor::bufpool::reserve`] for
//! explicit reservations); after that, a request at a warmed batch size
//! performs **zero** heap allocations — gated by `ci.sh`'s serve probe.

use crate::error::{Result, ServeError};
use timedrl::{read_model_export, EncoderKind, ModelExport, Pooling, Precision};
use timedrl_data::InstanceStats;
use timedrl_tensor::{
    attention_fused, attention_fused_relaxed, matmul, matmul_q8, quantize_per_channel, NdArray,
    QuantizedMatrix,
};

const EPS: f32 = 1e-5;

/// One step of the flat execution plan, in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Instance-normalize each `[T, C]` window and patch it into
    /// `[B, T_p, C·P]` tokens (Eq. 1).
    NormPatch,
    /// Prepend the `[CLS]` token, apply the linear token encoding, add the
    /// positional encoding: `[B, 1+T_p, D]` (Eqs. 2–3).
    EmbedTokens,
    /// Multi-head self-attention sublayer of block `i`, post-norm residual
    /// (`LN1(x + Attn(x))`).
    Attention(usize),
    /// Feed-forward sublayer of block `i`, post-norm residual
    /// (`LN2(x + FF(x))`).
    FeedForward(usize),
    /// Pool the instance embedding `z_i` and slice the timestamp
    /// embeddings `z_t` off the final token sequence (Eqs. 4–5).
    Split,
}

/// The frozen output of one embedding request.
#[derive(Debug, Clone)]
pub struct Embeddings {
    /// Instance-level embedding `z_i` — `[B, D]` (`[B, T_p·D]` under
    /// `Pooling::All`).
    pub z_i: NdArray,
    /// Timestamp-level embeddings `z_t` — `[B, T_p, D]`.
    pub z_t: NdArray,
}

/// A compiled linear-layer weight in whichever form the exactness tier
/// lowered it to: the exact tier keeps the checkpoint's f32 matrix, the
/// relaxed tier quantizes it per output channel at load time (DESIGN.md
/// §15) so requests hit the int8 GEMM.
enum Weight {
    Exact(NdArray),
    Quantized(QuantizedMatrix),
}

impl Weight {
    /// Lowers a `[in, out]` checkpoint matrix for the chosen tier.
    fn lower(w: NdArray, precision: Precision) -> Result<Self> {
        Ok(match precision {
            Precision::Exact => Weight::Exact(w),
            Precision::Relaxed => Weight::Quantized(quantize_per_channel(&w)?),
        })
    }

    /// `x · w` through the tier's kernel.
    fn matmul(&self, x: &NdArray) -> Result<NdArray> {
        Ok(match self {
            Weight::Exact(w) => matmul(x, w)?,
            Weight::Quantized(q) => matmul_q8(x, q)?,
        })
    }
}

/// Weights of one compiled transformer block. Matrix weights are stored
/// per-tier ([`Weight`]); vectors (biases, LayerNorm affine) stay f32 in
/// both tiers, exactly as the tape path stores them (`Linear` weights are
/// `[in, out]`).
struct Block {
    wq: Weight,
    bq: NdArray,
    wk: Weight,
    bk: NdArray,
    wv: Weight,
    bv: NdArray,
    wo: Weight,
    bo: NdArray,
    ln1_g: NdArray,
    ln1_b: NdArray,
    ln2_g: NdArray,
    ln2_b: NdArray,
    ff1_w: Weight,
    ff1_b: NdArray,
    ff2_w: Weight,
    ff2_b: NdArray,
}

/// A frozen, tape-free TimeDRL encoder: shapes resolved at load, weights
/// owned as plain arrays, execution driven by a flat [`PlanOp`] list.
pub struct CompiledModel {
    input_len: usize,
    n_features: usize,
    patch_len: usize,
    stride: usize,
    t_p: usize,
    width: usize, // token width C·P
    d: usize,
    heads: usize,
    head_dim: usize,
    pooling: Pooling,
    precision: Precision,
    cls: NdArray,
    pos: NdArray,
    token_w: Weight,
    token_b: NdArray,
    blocks: Vec<Block>,
    /// Whether attention is causally masked (the decoder variant). The
    /// fused kernel applies the mask per tile; no `[S, S]` constant exists.
    causal: bool,
    /// Timestamp-predictive head `p_θ` (`[D, C·P]` weight + `[C·P]` bias) —
    /// not part of the embedding plan, but the streaming anomaly scorer
    /// reconstructs patches through it.
    pred_w: Weight,
    pred_b: NdArray,
    plan: Vec<PlanOp>,
}

/// Pops the next array and checks its shape against the architecture.
fn take(
    arrays: &mut std::vec::IntoIter<NdArray>,
    name: &str,
    shape: &[usize],
) -> Result<NdArray> {
    let a = arrays
        .next()
        .ok_or_else(|| ServeError::BadModel(format!("missing parameter {name}")))?;
    if a.shape() != shape {
        return Err(ServeError::BadModel(format!(
            "parameter {name}: expected shape {shape:?}, checkpoint has {:?}",
            a.shape()
        )));
    }
    Ok(a)
}

impl CompiledModel {
    /// Loads a `KIND_MODEL` export container (written by `TimeDrl::export`)
    /// and compiles it at the exactness tier baked into the artifact
    /// header. Fails with a typed error on any corruption, shape mismatch,
    /// or a backbone without a compiled plan.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        Self::from_export(read_model_export(path)?)
    }

    /// Loads an export container and compiles it at an explicit tier,
    /// overriding the artifact's own tag — the `--precision` escape hatch
    /// of `embed_server`.
    pub fn load_with(path: impl AsRef<std::path::Path>, precision: Precision) -> Result<Self> {
        Self::from_export_with(read_model_export(path)?, precision)
    }

    /// Compiles an already-decoded [`ModelExport`] at the tier its header
    /// opts into.
    pub fn from_export(export: ModelExport) -> Result<Self> {
        let precision = export.precision;
        Self::from_export_with(export, precision)
    }

    /// Compiles an already-decoded [`ModelExport`] at an explicit tier.
    /// Under [`Precision::Relaxed`], every linear-layer matrix (token
    /// projection, attention projections, feed-forward, predictive head)
    /// is quantized per output channel here — once, at load time — and
    /// activation·activation products run the FMA kernels; softmax,
    /// LayerNorm, GELU, and every bias stay f32.
    pub fn from_export_with(export: ModelExport, precision: Precision) -> Result<Self> {
        let cfg = &export.config;
        let causal = match cfg.encoder {
            EncoderKind::TransformerEncoder => false,
            EncoderKind::TransformerDecoder => true,
            other => return Err(ServeError::UnsupportedEncoder(other.name())),
        };
        let (width, t_p, d) = (cfg.token_width(), cfg.num_patches(), cfg.d_model);
        let (heads, d_ff, layers) = (cfg.n_heads, cfg.d_ff, cfg.n_layers);
        let s = 1 + t_p;

        let expected = 4 + 16 * layers + 8;
        if export.arrays.len() != expected {
            return Err(ServeError::BadModel(format!(
                "export carries {} arrays, a {layers}-layer transformer needs {expected}",
                export.arrays.len()
            )));
        }
        let mut it = export.arrays.into_iter();
        let cls = take(&mut it, "cls", &[width])?;
        let pos = take(&mut it, "pos", &[s, d])?;
        let token_w = Weight::lower(take(&mut it, "token_proj.w", &[width, d])?, precision)?;
        let token_b = take(&mut it, "token_proj.b", &[d])?;
        let mut blocks = Vec::with_capacity(layers);
        for l in 0..layers {
            let p = |n: &str| format!("block{l}.{n}");
            blocks.push(Block {
                wq: Weight::lower(take(&mut it, &p("wq.w"), &[d, d])?, precision)?,
                bq: take(&mut it, &p("wq.b"), &[d])?,
                wk: Weight::lower(take(&mut it, &p("wk.w"), &[d, d])?, precision)?,
                bk: take(&mut it, &p("wk.b"), &[d])?,
                wv: Weight::lower(take(&mut it, &p("wv.w"), &[d, d])?, precision)?,
                bv: take(&mut it, &p("wv.b"), &[d])?,
                wo: Weight::lower(take(&mut it, &p("wo.w"), &[d, d])?, precision)?,
                bo: take(&mut it, &p("wo.b"), &[d])?,
                ln1_g: take(&mut it, &p("ln1.gamma"), &[d])?,
                ln1_b: take(&mut it, &p("ln1.beta"), &[d])?,
                ln2_g: take(&mut it, &p("ln2.gamma"), &[d])?,
                ln2_b: take(&mut it, &p("ln2.beta"), &[d])?,
                ff1_w: Weight::lower(take(&mut it, &p("ff1.w"), &[d, d_ff])?, precision)?,
                ff1_b: take(&mut it, &p("ff1.b"), &[d_ff])?,
                ff2_w: Weight::lower(take(&mut it, &p("ff2.w"), &[d_ff, d])?, precision)?,
                ff2_b: take(&mut it, &p("ff2.b"), &[d])?,
            });
        }
        // The contrastive head rides along in the export (it IS part of
        // the checkpoint) but plays no role on the frozen embedding path;
        // the predictive head is kept for streaming anomaly scoring.
        let hidden = (d / 4).max(2);
        let pred_w = Weight::lower(take(&mut it, "pred_head.w", &[d, width])?, precision)?;
        let pred_b = take(&mut it, "pred_head.b", &[width])?;
        take(&mut it, "contrast.l1.w", &[d, hidden])?;
        take(&mut it, "contrast.l1.b", &[hidden])?;
        take(&mut it, "contrast.bn.gamma", &[hidden])?;
        take(&mut it, "contrast.bn.beta", &[hidden])?;
        take(&mut it, "contrast.l2.w", &[hidden, d])?;
        take(&mut it, "contrast.l2.b", &[d])?;

        let mut plan = vec![PlanOp::NormPatch, PlanOp::EmbedTokens];
        for l in 0..layers {
            plan.push(PlanOp::Attention(l));
            plan.push(PlanOp::FeedForward(l));
        }
        plan.push(PlanOp::Split);

        Ok(Self {
            input_len: cfg.input_len,
            n_features: cfg.n_features,
            patch_len: cfg.patch.patch_len,
            stride: cfg.patch.stride,
            t_p,
            width,
            d,
            heads,
            head_dim: d / heads,
            pooling: cfg.pooling,
            precision,
            cls,
            pos,
            token_w,
            token_b,
            blocks,
            causal,
            pred_w,
            pred_b,
            plan,
        })
    }

    /// Window length `T` this model was trained on.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Feature count `C` per timestep.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Patch-token count `T_p`.
    pub fn num_patches(&self) -> usize {
        self.t_p
    }

    /// Patch length `P` (timesteps per token).
    pub fn patch_len(&self) -> usize {
        self.patch_len
    }

    /// Stride `S` between patch starts — the streaming engine's hop.
    pub fn patch_stride(&self) -> usize {
        self.stride
    }

    /// Patched token width `C·P`.
    pub fn token_width(&self) -> usize {
        self.width
    }

    /// The instance-embedding pooling strategy baked into the export.
    pub fn pooling(&self) -> Pooling {
        self.pooling
    }

    /// The exactness tier this model was compiled at. Tagged onto every
    /// wire response so clients can never mistake relaxed embeddings for
    /// bit-exact ones.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Latent width `D`.
    pub fn d_model(&self) -> usize {
        self.d
    }

    /// Width of one `z_i` row under this model's pooling strategy.
    pub fn zi_dim(&self) -> usize {
        self.pooling.output_dim(self.d, self.t_p)
    }

    /// The flat execution plan, in order.
    pub fn plan(&self) -> &[PlanOp] {
        &self.plan
    }

    /// Runs one forward at batch size `batch` against zeros, pre-sizing
    /// every pool bucket the real execution will request. After warming a
    /// batch size, requests at that size allocate nothing.
    pub fn warm(&self, batch: usize) {
        let zeros = NdArray::zeros(&[batch, self.input_len, self.n_features]);
        let _ = self.embed(&zeros);
    }

    /// Embeds a raw `[B, T, C]` batch of windows: the frozen
    /// `get_representations` surface, bitwise-equal to the eval-mode tape
    /// forward.
    pub fn embed(&self, windows: &NdArray) -> Result<Embeddings> {
        let shape = windows.shape();
        if shape.len() != 3 || shape[1] != self.input_len || shape[2] != self.n_features {
            return Err(ServeError::BadRequest(format!(
                "expected [B, {}, {}] windows, got {shape:?}",
                self.input_len, self.n_features
            )));
        }
        if shape[0] == 0 {
            return Err(ServeError::BadRequest("empty batch".into()));
        }
        self.embed_patched(&self.norm_patch(windows))
    }

    /// Embeds an already instance-normalized, patched `[B, T_p, C·P]`
    /// batch — the plan from `EmbedTokens` onward. This is the streaming
    /// engine's entry point: it maintains its own window statistics
    /// incrementally and normalizes cached patch tokens itself, then runs
    /// the identical transformer plan, so a streaming hop with exact
    /// statistics is bitwise-equal to [`CompiledModel::embed`] on the
    /// materialized window.
    pub fn embed_patched(&self, patched: &NdArray) -> Result<Embeddings> {
        let shape = patched.shape();
        if shape.len() != 3 || shape[1] != self.t_p || shape[2] != self.width {
            return Err(ServeError::BadRequest(format!(
                "expected [B, {}, {}] patched tokens, got {shape:?}",
                self.t_p, self.width
            )));
        }
        if shape[0] == 0 {
            return Err(ServeError::BadRequest("empty batch".into()));
        }
        let mut h = self.embed_tokens(patched)?;
        for op in &self.plan {
            match *op {
                // Input already normalized + patched + token-embedded.
                PlanOp::NormPatch | PlanOp::EmbedTokens => {}
                PlanOp::Attention(i) => h = self.attention(i, &h)?,
                PlanOp::FeedForward(i) => h = self.feed_forward(i, &h)?,
                PlanOp::Split => return self.split(&h),
            }
        }
        unreachable!("plan always terminates in Split")
    }

    /// The timestamp-predictive head's reconstruction of the patched input
    /// from `z_t` (Eq. 6): `[B, T_p, D] -> [B, T_p, C·P]` — the same
    /// arithmetic as the tape path's `TimeDrl::predict_patches`, used by
    /// the streaming anomaly scorer.
    pub fn reconstruct(&self, z_t: &NdArray) -> Result<NdArray> {
        let shape = z_t.shape();
        if shape.len() != 3 || shape[1] != self.t_p || shape[2] != self.d {
            return Err(ServeError::BadRequest(format!(
                "expected [B, {}, {}] timestamp embeddings, got {shape:?}",
                self.t_p, self.d
            )));
        }
        Ok(self.pred_w.matmul(z_t)?.add(&self.pred_b))
    }

    /// Instance-normalize + patch. The statistics come from the shared
    /// [`InstanceStats`] definition (the same arithmetic `instance_normalize`
    /// and the streaming engine's exact recompute use), and the patch copy
    /// writes straight into one pooled output block (no per-sample `Vec`s).
    fn norm_patch(&self, x: &NdArray) -> NdArray {
        let b = x.shape()[0];
        let c = self.n_features;
        let mut out = NdArray::zeros(&[b, self.t_p, self.width]);
        for i in 0..b {
            let xi = x.index_axis0(i); // [T, C]
            let norm = InstanceStats::compute(&xi).apply(&xi);
            let src = norm.data();
            let dst = &mut out.data_mut()[i * self.t_p * self.width..];
            for p in 0..self.t_p {
                let start = p * self.stride * c;
                dst[p * self.width..(p + 1) * self.width]
                    .copy_from_slice(&src[start..start + self.patch_len * c]);
            }
        }
        out
    }

    /// `[CLS]` prepend + linear token encoding + positional encoding.
    fn embed_tokens(&self, patched: &NdArray) -> Result<NdArray> {
        let b = patched.shape()[0];
        let cls = self.cls.reshape(&[1, 1, self.width])?.broadcast_to(&[b, 1, self.width])?;
        let with_cls = NdArray::concat(&[&cls, patched], 1);
        Ok(self.token_w.matmul(&with_cls)?.add(&self.token_b).add(&self.pos))
    }

    /// `[B, S, D] -> [B·H, S, Dh]`, the tape's reshape/permute/reshape.
    fn split_heads(&self, x: &NdArray, b: usize, s: usize) -> Result<NdArray> {
        Ok(x.reshape(&[b, s, self.heads, self.head_dim])?
            .permute(&[0, 2, 1, 3])
            .reshape(&[b * self.heads, s, self.head_dim])?)
    }

    fn attention(&self, i: usize, h: &NdArray) -> Result<NdArray> {
        let blk = &self.blocks[i];
        let (b, s, d) = (h.shape()[0], h.shape()[1], h.shape()[2]);
        let q = self.split_heads(&blk.wq.matmul(h)?.add(&blk.bq), b, s)?;
        let k = self.split_heads(&blk.wk.matmul(h)?.add(&blk.bk), b, s)?;
        let v = self.split_heads(&blk.wv.matmul(h)?.add(&blk.bv), b, s)?;
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        // The exact tier runs the fused tiled kernel bit-for-bit equal to
        // the old composed chain; the relaxed tier takes the single-pass
        // online-softmax FMA variant. Neither materializes [B·H, S, S].
        let merged = match self.precision {
            Precision::Exact => attention_fused(&q, &k, &v, scale, self.causal, None)?,
            Precision::Relaxed => attention_fused_relaxed(&q, &k, &v, scale, self.causal)?,
        }
        .reshape(&[b, self.heads, s, self.head_dim])?
        .permute(&[0, 2, 1, 3])
        .reshape(&[b, s, d])?;
        let attn_out = blk.wo.matmul(&merged)?.add(&blk.bo);
        Ok(layer_norm(&h.add(&attn_out), &blk.ln1_g, &blk.ln1_b))
    }

    fn feed_forward(&self, i: usize, h: &NdArray) -> Result<NdArray> {
        let blk = &self.blocks[i];
        let a = gelu(&blk.ff1_w.matmul(h)?.add(&blk.ff1_b));
        let ff = blk.ff2_w.matmul(&a)?.add(&blk.ff2_b);
        Ok(layer_norm(&h.add(&ff), &blk.ln2_g, &blk.ln2_b))
    }

    /// Pooling + `z_t` slice off the final token sequence `z ∈ [B, S, D]`.
    fn split(&self, z: &NdArray) -> Result<Embeddings> {
        let (b, tokens, d) = (z.shape()[0], z.shape()[1], z.shape()[2]);
        let t_p = tokens - 1;
        let z_i = match self.pooling {
            Pooling::Cls => z.slice(1, 0, 1)?.reshape(&[b, d])?,
            Pooling::Last => z.slice(1, tokens - 1, 1)?.reshape(&[b, d])?,
            Pooling::Gap => z.slice(1, 1, t_p)?.mean_axis(1, false),
            Pooling::All => z.slice(1, 1, t_p)?.reshape(&[b, t_p * d])?,
        };
        let z_t = z.slice(1, 1, t_p)?;
        Ok(Embeddings { z_i, z_t })
    }
}

/// The tape's LayerNorm value chain, verbatim: mean over the last axis,
/// center, population variance, `(x−μ)/√(σ²+ε) · γ + β`.
fn layer_norm(x: &NdArray, gamma: &NdArray, beta: &NdArray) -> NdArray {
    let last = x.rank() - 1;
    let mean = x.mean_axis(last, true);
    let centered = x.sub(&mean);
    let var = centered.mul(&centered).mean_axis(last, true);
    let std = var.add_scalar(EPS).sqrt();
    centered.div(&std).mul(gamma).add(beta)
}

/// The tape's tanh-approximation GELU, same constants and expression.
fn gelu(x: &NdArray) -> NdArray {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    const A: f32 = 0.044_715;
    x.map(|v| {
        let u = C * (v + A * v * v * v);
        0.5 * v * (1.0 + u.tanh())
    })
}
