//! Tape-free compiled inference and a zero-dependency embedding service
//! for frozen TimeDRL encoders (DESIGN.md §13).
//!
//! The training stack runs every forward through the `Var` autograd tape;
//! this crate serves embeddings without one. [`CompiledModel`] loads a
//! `KIND_MODEL` checkpoint container (written by `TimeDrl::export`),
//! resolves all shapes once, lowers the encoder to a flat [`PlanOp`]
//! list, and executes it with the same packed kernels the tape calls —
//! making its `z_i`/`z_t` bitwise-identical to the eval-mode tape forward
//! while performing **zero heap allocations per request** once the
//! tensor-pool arena is warm.
//!
//! Around that core:
//!
//! - [`protocol`] — a CRC-guarded, length-prefixed frame protocol usable
//!   over any byte stream (stdin/stdout, TCP);
//! - [`EmbedCache`] — an LRU cache of per-window embeddings, keyed by
//!   window hash with exact bit-level confirmation;
//! - [`Batcher`] — adaptive micro-batch coalescing of queued requests;
//! - [`serve_stream`] / [`serve_tcp`] — the serving loops behind the
//!   `embed_server` binary.
//!
//! Cache and coalescer are *semantically invisible*: a served byte stream
//! is identical with them on or off (`tests/invisibility.rs`), and every
//! malformed checkpoint or wire frame surfaces as a typed [`ServeError`]
//! rather than a panic (`tests/corruption.rs`).

pub mod batcher;
pub mod cache;
pub mod compiled;
pub mod error;
pub mod protocol;
pub mod server;

pub use batcher::Batcher;
pub use cache::{window_hash, EmbedCache};
pub use compiled::{CompiledModel, Embeddings, PlanOp};
pub use error::{Result, ServeError};
pub use server::{serve_stream, serve_tcp, ServeConfig, ServeStats};
