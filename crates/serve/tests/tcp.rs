//! End-to-end TCP serving: real sockets, concurrent clients, the
//! single-compute-thread coalescer, and error frames for bad requests.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use timedrl::{decode_model_export, encode_model_export, Precision, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_serve::{protocol, serve_tcp, CompiledModel, ServeConfig};
use timedrl_tensor::{NdArray, Prng};

fn compiled() -> CompiledModel {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 1;
    cfg.seed = 37;
    let model = TimeDrl::new(cfg);
    let payload = encode_model_export(&model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap()).unwrap()
}

fn start_server() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let model = compiled();
    std::thread::spawn(move || {
        let _ = serve_tcp(model, listener, ServeConfig { max_batch: 8, ..Default::default() });
    });
    addr
}

fn request(addr: std::net::SocketAddr, windows: &NdArray) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).unwrap();
    protocol::write_frame(&mut stream, &protocol::encode_request(windows)).unwrap();
    let mut frame = Vec::new();
    assert!(protocol::read_frame_into(&mut stream, &mut frame, 64 << 20).unwrap());
    frame
}

#[test]
fn concurrent_tcp_clients_get_bit_exact_embeddings() {
    let addr = start_server();
    let reference = compiled();

    let clients: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let windows = Prng::new(50 + i).randn(&[2, 16, 1]);
                let frame = request(addr, &windows);
                (windows, frame)
            })
        })
        .collect();
    for client in clients {
        let (windows, frame) = client.join().unwrap();
        let (resp, precision) = protocol::decode_response(&frame).expect("ok response");
        assert_eq!(precision, Precision::Exact, "default serving tier is exact");
        let want = reference.embed(&windows).unwrap();
        assert_eq!(
            resp.z_i.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.z_i.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "z_i over TCP differs from direct embed"
        );
        assert_eq!(
            resp.z_t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.z_t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "z_t over TCP differs from direct embed"
        );
    }
}

#[test]
fn tcp_rejects_wrong_geometry_with_an_error_frame() {
    let addr = start_server();
    // Window length 8 against a model serving T=16.
    let frame = request(addr, &Prng::new(1).randn(&[1, 8, 1]));
    let err = protocol::decode_response(&frame).expect_err("must be an error frame");
    assert!(err.to_string().contains("16"), "error names the expected geometry: {err}");
}

#[test]
fn tcp_torn_frame_gets_error_frame_and_disconnect() {
    let addr = start_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    // A header promising 100 payload bytes, then a dead connection.
    stream.write_all(&100u32.to_le_bytes()).unwrap();
    stream.write_all(&0u32.to_le_bytes()).unwrap();
    stream.write_all(&[1, 2, 3]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut frame = Vec::new();
    assert!(protocol::read_frame_into(&mut stream, &mut frame, 64 << 20).unwrap());
    let err = protocol::decode_response(&frame).expect_err("must be an error frame");
    assert!(err.to_string().contains("truncated"), "{err}");
}
