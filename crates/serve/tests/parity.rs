//! Differential parity: the compiled tape-free forward must be
//! *bitwise* identical to the eval-mode `Var`-tape forward — across
//! batch sizes, worker-thread counts, cold vs warm arenas, both
//! compiled backbones, and every pooling strategy.

use testkit::pool;
use timedrl::{decode_model_export, encode_model_export, EncoderKind, Pooling, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_nn::Ctx;
use timedrl_serve::CompiledModel;
use timedrl_tensor::{bufpool, NdArray, Prng};

fn build(encoder: EncoderKind, pooling: Pooling, seed: u64) -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.encoder = encoder;
    cfg.pooling = pooling;
    cfg.seed = seed;
    TimeDrl::new(cfg)
}

/// Compiles a model through the same encode/decode the on-disk container
/// uses (kind tag stripped, as the container reader does).
fn compile(model: &TimeDrl) -> CompiledModel {
    let payload = encode_model_export(model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap()).unwrap()
}

/// Tape-path reference embeddings in eval mode.
fn tape_embed(model: &TimeDrl, x: &NdArray) -> (NdArray, NdArray) {
    let enc = model.encode(x, &mut Ctx::eval());
    (enc.instance(model.config().pooling).to_array(), enc.timestamps().to_array())
}

#[track_caller]
fn assert_bits_eq(label: &str, got: &NdArray, want: &NdArray) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{label}: element {i} differs ({g} vs {w})"
        );
    }
}

#[test]
fn parity_across_batch_threads_and_arena_state() {
    for encoder in [EncoderKind::TransformerEncoder, EncoderKind::TransformerDecoder] {
        let model = build(encoder, Pooling::Cls, 17);
        let compiled = compile(&model);
        for batch in [1usize, 3, 17] {
            let x = Prng::new(100 + batch as u64).randn(&[batch, 16, 1]);
            let (want_zi, want_zt) = tape_embed(&model, &x);
            for threads in [1usize, 2, 4] {
                pool::with_threads(threads, || {
                    let label = format!("{encoder:?} batch={batch} threads={threads}");
                    // Cold arena: every buffer freshly allocated.
                    bufpool::clear();
                    let cold = compiled.embed(&x).unwrap();
                    assert_bits_eq(&format!("{label} cold z_i"), &cold.z_i, &want_zi);
                    assert_bits_eq(&format!("{label} cold z_t"), &cold.z_t, &want_zt);
                    // Warm arena: every buffer recycled from the pool.
                    compiled.warm(batch);
                    let warm = compiled.embed(&x).unwrap();
                    assert_bits_eq(&format!("{label} warm z_i"), &warm.z_i, &want_zi);
                    assert_bits_eq(&format!("{label} warm z_t"), &warm.z_t, &want_zt);
                });
            }
        }
    }
}

#[test]
fn parity_across_pooling_variants() {
    for (i, &pooling) in Pooling::ALL.iter().enumerate() {
        let model = build(EncoderKind::TransformerEncoder, pooling, 23 + i as u64);
        let compiled = compile(&model);
        let x = Prng::new(41).randn(&[3, 16, 1]);
        let (want_zi, want_zt) = tape_embed(&model, &x);
        let got = compiled.embed(&x).unwrap();
        assert_eq!(got.z_i.shape(), &[3, compiled.zi_dim()], "{pooling:?}: z_i shape");
        assert_bits_eq(&format!("{pooling:?} z_i"), &got.z_i, &want_zi);
        assert_bits_eq(&format!("{pooling:?} z_t"), &got.z_t, &want_zt);
    }
}

#[test]
fn parity_survives_export_file_roundtrip() {
    let model = build(EncoderKind::TransformerEncoder, Pooling::Gap, 31);
    let dir = std::env::temp_dir().join("timedrl_serve_parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tdrl");
    model.export(&path).unwrap();
    let compiled = CompiledModel::load(&path).unwrap();
    let x = Prng::new(9).randn(&[2, 16, 1]);
    let (want_zi, want_zt) = tape_embed(&model, &x);
    let got = compiled.embed(&x).unwrap();
    assert_bits_eq("file roundtrip z_i", &got.z_i, &want_zi);
    assert_bits_eq("file roundtrip z_t", &got.z_t, &want_zt);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unsupported_backbones_are_typed_errors() {
    for &encoder in EncoderKind::ALL.iter() {
        if matches!(
            encoder,
            EncoderKind::TransformerEncoder | EncoderKind::TransformerDecoder
        ) {
            continue;
        }
        let model = build(encoder, Pooling::Cls, 3);
        let payload = encode_model_export(&model);
        let export = decode_model_export(&payload[4..]).unwrap();
        let err = CompiledModel::from_export(export).err().expect("non-transformer must fail");
        assert!(
            matches!(err, timedrl_serve::ServeError::UnsupportedEncoder(_)),
            "{encoder:?}: expected UnsupportedEncoder, got {err}"
        );
    }
}
