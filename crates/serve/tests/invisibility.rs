//! Semantic invisibility: the embedding cache and the micro-batch
//! coalescer are pure performance features — a served byte stream must be
//! indistinguishable with them on or off.

use timedrl::{decode_model_export, encode_model_export, Pooling, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_serve::{
    protocol, serve_stream, Batcher, CompiledModel, EmbedCache, Embeddings, ServeConfig,
};
use timedrl_tensor::{NdArray, Prng};

fn compiled(pooling: Pooling) -> CompiledModel {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.pooling = pooling;
    cfg.seed = 29;
    let model = TimeDrl::new(cfg);
    let payload = encode_model_export(&model);
    CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap()).unwrap()
}

#[track_caller]
fn assert_bits_eq(label: &str, got: &NdArray, want: &NdArray) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: element {i} differs");
    }
}

#[track_caller]
fn assert_embs_eq(label: &str, got: &[Embeddings], want: &[Embeddings]) {
    assert_eq!(got.len(), want.len(), "{label}: request count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_bits_eq(&format!("{label}: request {i} z_i"), &g.z_i, &w.z_i);
        assert_bits_eq(&format!("{label}: request {i} z_t"), &g.z_t, &w.z_t);
    }
}

/// Request mix with repeats across *and* within requests: batches of
/// 1, 3, and 2 windows where request 2 repeats a window from request 0.
fn request_mix() -> Vec<NdArray> {
    let a = Prng::new(1).randn(&[1, 16, 1]);
    let b = Prng::new(2).randn(&[3, 16, 1]);
    let mut c = Prng::new(3).randn(&[2, 16, 1]);
    c.data_mut()[..16].copy_from_slice(a.data());
    vec![a, b, c]
}

/// Ground truth: each request embedded alone, no cache, no coalescing.
fn one_at_a_time(model: &CompiledModel, requests: &[NdArray]) -> Vec<Embeddings> {
    requests.iter().map(|r| model.embed(r).unwrap()).collect()
}

#[test]
fn cache_is_byte_invisible_and_actually_hits() {
    let model = compiled(Pooling::Cls);
    let requests = request_mix();
    let want = one_at_a_time(&model, &requests);

    let mut cache = EmbedCache::new(64);
    let batcher = Batcher::new(8);
    // Two passes over the same traffic: the second is served entirely
    // from the cache and must still be byte-identical.
    let first = batcher.run(&model, Some(&mut cache), &requests).unwrap();
    assert_embs_eq("cached pass 1", &first, &want);
    // Lookups precede inserts within one coalesced run, so pass 1 is all
    // misses; the five distinct windows are cached on the way out.
    assert_eq!((cache.hits(), cache.misses()), (0, 6));
    assert_eq!(cache.len(), 5, "five distinct windows cached");
    let second = batcher.run(&model, Some(&mut cache), &requests).unwrap();
    assert_embs_eq("cached pass 2", &second, &want);
    assert_eq!(cache.hits(), 6, "pass 2 is served entirely from cache");
    assert_eq!(cache.misses(), 6, "no new window reaches the encoder");
}

#[test]
fn coalescing_is_byte_invisible() {
    for pooling in [Pooling::Cls, Pooling::Gap, Pooling::All] {
        let model = compiled(pooling);
        let requests = request_mix();
        let want = one_at_a_time(&model, &requests);
        // No cache: all six windows stack into coalesced encoder passes.
        for max_batch in [1usize, 4, 64] {
            let got = Batcher::new(max_batch).run(&model, None, &requests).unwrap();
            assert_embs_eq(&format!("{pooling:?} max_batch={max_batch}"), &got, &want);
        }
    }
}

#[test]
fn cache_and_coalescer_compose_invisibly() {
    let model = compiled(Pooling::Last);
    let requests = request_mix();
    let want = one_at_a_time(&model, &requests);
    let mut cache = EmbedCache::new(2); // small: forces evictions mid-run
    for round in 0..3 {
        let got = Batcher::new(2).run(&model, Some(&mut cache), &requests).unwrap();
        assert_embs_eq(&format!("round {round}"), &got, &want);
    }
}

/// End-to-end over the stream server: the byte stream a client sees is
/// identical whether the server caches or not.
#[test]
fn served_byte_stream_is_identical_with_and_without_cache() {
    let model = compiled(Pooling::Cls);
    let requests = request_mix();
    let mut wire = Vec::new();
    for req in &requests {
        // Send the traffic twice so the cached server gets hits.
        protocol::write_frame(&mut wire, &protocol::encode_request(req)).unwrap();
    }
    for req in &requests {
        protocol::write_frame(&mut wire, &protocol::encode_request(req)).unwrap();
    }

    let serve = |cache_capacity: usize| {
        let cfg = ServeConfig { max_batch: 8, cache_capacity, ..ServeConfig::default() };
        let mut input = wire.as_slice();
        let mut output = Vec::new();
        let stats = serve_stream(&model, &mut input, &mut output, cfg).unwrap();
        (output, stats)
    };
    let (with_cache, cached_stats) = serve(64);
    let (without_cache, plain_stats) = serve(0);
    assert_eq!(with_cache, without_cache, "served byte streams differ");
    assert_eq!(cached_stats.served, 6);
    assert_eq!(plain_stats.served, 6);
    assert!(cached_stats.cache_hits > 0, "cached server never hit");
    assert_eq!(plain_stats.cache_hits, 0);
}
