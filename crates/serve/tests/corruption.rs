//! Corruption suite: every byte-flip and truncation of a model container
//! or a wire frame must surface as a typed error — never a panic, and
//! never an attacker-controlled allocation.

use testkit::alloc::allocated_bytes;
use timedrl::{TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_serve::{protocol, CompiledModel, ServeError};
use timedrl_tensor::{NdArray, Prng};

fn tiny_model() -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 8;
    cfg.n_layers = 1;
    cfg.seed = 13;
    TimeDrl::new(cfg)
}

fn export_bytes(dir: &std::path::Path) -> Vec<u8> {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join("model.tdrl");
    tiny_model().export(&path).unwrap();
    std::fs::read(path).unwrap()
}

/// Allocation ceiling for rejecting one corrupt artifact: generous room
/// for error formatting, buffered file I/O, and concurrent test threads
/// (the byte counter is process-global), yet far below what a trusted
/// lying length prefix would have reserved.
const REJECT_BYTES_CAP: u64 = 8 << 20;

#[test]
fn every_container_byte_flip_is_a_typed_error() {
    let dir = std::env::temp_dir().join("timedrl_serve_flip");
    let pristine = export_bytes(&dir);
    let victim = dir.join("flipped.tdrl");
    for pos in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[pos] ^= 0x5A;
        std::fs::write(&victim, &bad).unwrap();
        let before = allocated_bytes();
        match CompiledModel::load(&victim) {
            Err(ServeError::BadModel(_) | ServeError::UnsupportedEncoder(_)) => {}
            Err(other) => panic!("flip at {pos}: unexpected error class {other}"),
            Ok(_) => panic!("flip at {pos}: corrupt container accepted"),
        }
        let grew = allocated_bytes() - before;
        assert!(grew < REJECT_BYTES_CAP, "flip at {pos}: rejected load allocated {grew} bytes");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_container_truncation_is_a_typed_error() {
    let dir = std::env::temp_dir().join("timedrl_serve_trunc");
    let pristine = export_bytes(&dir);
    let victim = dir.join("truncated.tdrl");
    for len in 0..pristine.len() {
        std::fs::write(&victim, &pristine[..len]).unwrap();
        assert!(
            matches!(CompiledModel::load(&victim), Err(ServeError::BadModel(_))),
            "truncation to {len} bytes not rejected as BadModel"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn request_frame() -> Vec<u8> {
    let windows = Prng::new(2).randn(&[2, 16, 1]);
    let payload = protocol::encode_request(&windows);
    let mut frame = Vec::new();
    protocol::write_frame(&mut frame, &payload).unwrap();
    frame
}

/// Reads one frame + decodes it as a request, the way the server does.
fn try_serve_frame(bytes: &[u8]) -> Result<NdArray, ServeError> {
    let mut reader = bytes;
    let mut buf = Vec::new();
    if !protocol::read_frame_into(&mut reader, &mut buf, 1 << 20)? {
        return Err(ServeError::BadFrame("no frame".into()));
    }
    protocol::decode_request(&buf, 16, 1, 64)
}

#[test]
fn every_wire_frame_byte_flip_is_detected() {
    let pristine = request_frame();
    // Sanity: the pristine frame decodes.
    assert!(try_serve_frame(&pristine).is_ok());
    for pos in 0..pristine.len() {
        let mut bad = pristine.clone();
        bad[pos] ^= 0x5A;
        let before = allocated_bytes();
        match try_serve_frame(&bad) {
            Err(ServeError::BadFrame(_) | ServeError::BadRequest(_)) => {}
            Err(other) => panic!("flip at {pos}: unexpected error class {other}"),
            Ok(_) => panic!("flip at {pos}: corrupt frame accepted"),
        }
        let grew = allocated_bytes() - before;
        assert!(grew < REJECT_BYTES_CAP, "flip at {pos}: rejected frame allocated {grew} bytes");
    }
}

#[test]
fn every_wire_frame_truncation_is_detected() {
    let pristine = request_frame();
    for len in 1..pristine.len() {
        assert!(
            matches!(try_serve_frame(&pristine[..len]), Err(ServeError::BadFrame(_))),
            "stream cut at {len} bytes not rejected as BadFrame"
        );
    }
    // A cut at zero bytes is a clean end-of-stream, not an error.
    let mut empty: &[u8] = &[];
    let mut buf = Vec::new();
    assert!(!protocol::read_frame_into(&mut empty, &mut buf, 1 << 20).unwrap());
}

#[test]
fn lying_length_prefix_cannot_force_allocation() {
    // Header claims a 4 GiB payload; the cap must reject it before any
    // payload buffer is reserved.
    let mut frame = Vec::new();
    frame.extend_from_slice(&u32::MAX.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 64]);
    let before = allocated_bytes();
    let mut reader = frame.as_slice();
    let mut buf = Vec::new();
    let err = protocol::read_frame_into(&mut reader, &mut buf, 1 << 20).unwrap_err();
    assert!(matches!(err, ServeError::BadFrame(_)));
    assert_eq!(buf.capacity(), 0, "no payload buffer may be reserved");
    assert!(allocated_bytes() - before < REJECT_BYTES_CAP);
}

#[test]
fn oversized_declared_batch_is_rejected_before_reservation() {
    // A syntactically valid frame whose *request header* lies: batch of
    // u64::MAX windows with no sample bytes behind it.
    let mut payload = Vec::new();
    payload.extend_from_slice(&protocol::REQ_EMBED.to_le_bytes());
    payload.extend_from_slice(&u64::MAX.to_le_bytes()); // batch
    payload.extend_from_slice(&16u64.to_le_bytes()); // t
    payload.extend_from_slice(&1u64.to_le_bytes()); // c
    let mut frame = Vec::new();
    protocol::write_frame(&mut frame, &payload).unwrap();
    let before = allocated_bytes();
    let err = try_serve_frame(&frame).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)), "got {err}");
    assert!(allocated_bytes() - before < REJECT_BYTES_CAP);
}
