//! The relaxed exactness tier: int8-quantized linear layers + FMA
//! activation products. Relaxed serving must stay ε-close to the exact
//! tier, keep the zero-allocation steady state, be deterministic across
//! worker-thread counts, and never silently change the exact tier.

use testkit::alloc::count_allocations;
use testkit::pool;
use timedrl::{decode_model_export, encode_model_export, Precision, TimeDrl, TimeDrlConfig};
use timedrl_data::PatchConfig;
use timedrl_serve::{protocol, CompiledModel, Embeddings};
use timedrl_tensor::{bufpool, NdArray, Prng};

/// Worst-case relative error budget for the relaxed tier on the fixture
/// models: int8 per-channel weights carry ~1/254 relative rounding error
/// per matrix, compounded across the layer stack.
const EPS: f32 = 5e-2;

fn build(seed: u64) -> TimeDrl {
    let mut cfg = TimeDrlConfig::forecasting(16);
    cfg.patch = PatchConfig::non_overlapping(4);
    cfg.d_model = 8;
    cfg.n_heads = 2;
    cfg.d_ff = 16;
    cfg.n_layers = 2;
    cfg.seed = seed;
    TimeDrl::new(cfg)
}

fn compile(model: &TimeDrl, precision: Precision) -> CompiledModel {
    let payload = encode_model_export(model);
    let export = decode_model_export(&payload[4..]).unwrap();
    CompiledModel::from_export_with(export, precision).unwrap()
}

/// Largest elementwise deviation, normalized by the exact tensor's scale.
fn rel_err(got: &NdArray, want: &NdArray) -> f32 {
    assert_eq!(got.shape(), want.shape());
    let scale = want.data().iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
    got.data()
        .iter()
        .zip(want.data())
        .fold(0.0f32, |m, (g, w)| m.max((g - w).abs()))
        / scale
}

#[track_caller]
fn assert_bits_eq(label: &str, got: &NdArray, want: &NdArray) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape mismatch");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{label}: element {i} differs ({g} vs {w})");
    }
}

#[test]
fn relaxed_embeddings_stay_within_epsilon_of_exact() {
    for seed in [17u64, 23, 31] {
        let model = build(seed);
        let exact = compile(&model, Precision::Exact);
        let relaxed = compile(&model, Precision::Relaxed);
        assert_eq!(exact.precision(), Precision::Exact);
        assert_eq!(relaxed.precision(), Precision::Relaxed);
        let x = Prng::new(200 + seed).randn(&[3, 16, 1]);
        let want = exact.embed(&x).unwrap();
        let got = relaxed.embed(&x).unwrap();
        let (e_zi, e_zt) = (rel_err(&got.z_i, &want.z_i), rel_err(&got.z_t, &want.z_t));
        assert!(e_zi < EPS, "seed {seed}: relaxed z_i drifts {e_zi} from exact");
        assert!(e_zt < EPS, "seed {seed}: relaxed z_t drifts {e_zt} from exact");
    }
}

#[test]
fn relaxed_steady_state_allocates_nothing() {
    let model = build(17);
    let relaxed = compile(&model, Precision::Relaxed);
    let x = Prng::new(77).randn(&[3, 16, 1]);
    // Allocation counting is process-global; pin to one worker thread.
    pool::with_threads(1, || {
        relaxed.warm(3);
        relaxed.warm(3);
        let (result, allocs) = count_allocations(|| relaxed.embed(&x));
        result.unwrap();
        assert_eq!(allocs, 0, "relaxed steady state must be allocation-free");
    });
}

#[test]
fn relaxed_tier_is_deterministic_across_thread_counts() {
    let model = build(23);
    let relaxed = compile(&model, Precision::Relaxed);
    let x = Prng::new(9).randn(&[5, 16, 1]);
    let reference: Embeddings = pool::with_threads(1, || {
        bufpool::clear();
        relaxed.embed(&x).unwrap()
    });
    for threads in [2usize, 4] {
        pool::with_threads(threads, || {
            bufpool::clear();
            let got = relaxed.embed(&x).unwrap();
            assert_bits_eq(&format!("threads={threads} z_i"), &got.z_i, &reference.z_i);
            assert_bits_eq(&format!("threads={threads} z_t"), &got.z_t, &reference.z_t);
        });
    }
}

#[test]
fn exact_tier_is_unchanged_by_the_weight_lowering_layer() {
    // `from_export` (artifact tag: exact) and `from_export_with(Exact)`
    // must agree bitwise — the Weight wrapper is a pass-through for f32.
    let model = build(31);
    let payload = encode_model_export(&model);
    let default_path = CompiledModel::from_export(decode_model_export(&payload[4..]).unwrap()).unwrap();
    let explicit = compile(&model, Precision::Exact);
    let x = Prng::new(3).randn(&[2, 16, 1]);
    let a = default_path.embed(&x).unwrap();
    let b = explicit.embed(&x).unwrap();
    assert_bits_eq("exact z_i", &a.z_i, &b.z_i);
    assert_bits_eq("exact z_t", &a.z_t, &b.z_t);
}

#[test]
fn artifact_precision_tag_is_honored_and_overridable() {
    let model = build(17);
    let dir = std::env::temp_dir().join("timedrl_serve_relaxed_tag");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.tdrl");
    model.export_with(&path, Precision::Relaxed).unwrap();
    // `load` honors the container's tier; `load_with` overrides it.
    assert_eq!(CompiledModel::load(&path).unwrap().precision(), Precision::Relaxed);
    let forced = CompiledModel::load_with(&path, Precision::Exact).unwrap();
    assert_eq!(forced.precision(), Precision::Exact);
    // The forced-exact load is bitwise the plain exact model.
    let x = Prng::new(6).randn(&[2, 16, 1]);
    let want = compile(&model, Precision::Exact).embed(&x).unwrap();
    let got = forced.embed(&x).unwrap();
    assert_bits_eq("forced-exact z_i", &got.z_i, &want.z_i);
    assert_bits_eq("forced-exact z_t", &got.z_t, &want.z_t);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn responses_carry_the_serving_tier_on_the_wire() {
    let model = build(17);
    for precision in Precision::ALL {
        let compiled = compile(&model, precision);
        let x = Prng::new(11).randn(&[2, 16, 1]);
        let emb = compiled.embed(&x).unwrap();
        let mut buf = Vec::new();
        protocol::encode_response(&mut buf, &emb, compiled.precision());
        let (resp, tier) = protocol::decode_response(&buf).unwrap();
        assert_eq!(tier, precision, "wire tier must round-trip");
        assert_bits_eq("wire z_i", &resp.z_i, &emb.z_i);
        assert_bits_eq("wire z_t", &resp.z_t, &emb.z_t);
    }
}
